// Strong time types for the ronpath simulator.
//
// All simulation time is carried as signed 64-bit nanosecond counts wrapped
// in two distinct vocabulary types: Duration (a span) and TimePoint (an
// instant on the virtual clock). Keeping them distinct prevents the classic
// "added two timestamps" bug; arithmetic is defined only where it is
// meaningful (TimePoint + Duration, TimePoint - TimePoint, ...).
//
// The range of int64 nanoseconds (~292 years) comfortably covers the
// 14-day RON2003 run the paper analyses.

#ifndef RONPATH_UTIL_TIME_H_
#define RONPATH_UTIL_TIME_H_

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace ronpath {

// A signed span of virtual time with nanosecond resolution.
class Duration {
 public:
  constexpr Duration() = default;

  // Named constructors; prefer these to raw nanosecond counts.
  [[nodiscard]] static constexpr Duration nanos(std::int64_t n) { return Duration(n); }
  [[nodiscard]] static constexpr Duration micros(std::int64_t us) { return Duration(us * 1'000); }
  [[nodiscard]] static constexpr Duration millis(std::int64_t ms) { return Duration(ms * 1'000'000); }
  [[nodiscard]] static constexpr Duration seconds(std::int64_t s) { return Duration(s * 1'000'000'000); }
  [[nodiscard]] static constexpr Duration minutes(std::int64_t m) { return seconds(m * 60); }
  [[nodiscard]] static constexpr Duration hours(std::int64_t h) { return seconds(h * 3'600); }
  [[nodiscard]] static constexpr Duration days(std::int64_t d) { return seconds(d * 86'400); }

  // Fractional-second construction, used by stochastic interarrival draws.
  [[nodiscard]] static constexpr Duration from_seconds_f(double s) {
    return Duration(static_cast<std::int64_t>(s * 1e9));
  }
  [[nodiscard]] static constexpr Duration from_millis_f(double ms) {
    return Duration(static_cast<std::int64_t>(ms * 1e6));
  }

  [[nodiscard]] static constexpr Duration zero() { return Duration(0); }
  [[nodiscard]] static constexpr Duration max() {
    return Duration(std::numeric_limits<std::int64_t>::max());
  }
  [[nodiscard]] static constexpr Duration min() {
    return Duration(std::numeric_limits<std::int64_t>::min());
  }

  // Sentinel-safe addition: Duration::max() means "unknown / unreachable"
  // throughout the router, and adding a penalty to it must not wrap into a
  // small (wrongly attractive) value. max() absorbs everything; any other
  // overflow saturates toward the corresponding extreme.
  [[nodiscard]] static constexpr Duration saturating_add(Duration a, Duration b) {
    if (a == max() || b == max()) return max();
    std::int64_t r = 0;
    if (__builtin_add_overflow(a.ns_, b.ns_, &r)) {
      return a.ns_ > 0 ? max() : min();
    }
    return Duration(r);
  }

  [[nodiscard]] constexpr std::int64_t count_nanos() const { return ns_; }
  [[nodiscard]] constexpr std::int64_t count_micros() const { return ns_ / 1'000; }
  [[nodiscard]] constexpr std::int64_t count_millis() const { return ns_ / 1'000'000; }
  [[nodiscard]] constexpr std::int64_t count_seconds() const { return ns_ / 1'000'000'000; }
  [[nodiscard]] constexpr double to_seconds_f() const { return static_cast<double>(ns_) / 1e9; }
  [[nodiscard]] constexpr double to_millis_f() const { return static_cast<double>(ns_) / 1e6; }

  [[nodiscard]] constexpr bool is_zero() const { return ns_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const { return ns_ < 0; }

  constexpr Duration& operator+=(Duration d) { ns_ += d.ns_; return *this; }
  constexpr Duration& operator-=(Duration d) { ns_ -= d.ns_; return *this; }
  constexpr Duration& operator*=(std::int64_t k) { ns_ *= k; return *this; }

  friend constexpr Duration operator+(Duration a, Duration b) { return Duration(a.ns_ + b.ns_); }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration(a.ns_ - b.ns_); }
  friend constexpr Duration operator*(Duration a, std::int64_t k) { return Duration(a.ns_ * k); }
  friend constexpr Duration operator*(std::int64_t k, Duration a) { return Duration(a.ns_ * k); }
  friend constexpr Duration operator-(Duration a) { return Duration(-a.ns_); }
  // Integer division: how many times does b fit into a.
  friend constexpr std::int64_t operator/(Duration a, Duration b) { return a.ns_ / b.ns_; }
  friend constexpr Duration operator/(Duration a, std::int64_t k) { return Duration(a.ns_ / k); }
  friend constexpr Duration operator%(Duration a, Duration b) { return Duration(a.ns_ % b.ns_); }

  friend constexpr auto operator<=>(Duration, Duration) = default;

  // Human-readable rendering ("1.500ms", "14d", ...), for logs and tables.
  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

// An instant on the simulation clock. Time zero is the start of a run.
class TimePoint {
 public:
  constexpr TimePoint() = default;

  [[nodiscard]] static constexpr TimePoint epoch() { return TimePoint(); }
  [[nodiscard]] static constexpr TimePoint from_nanos(std::int64_t ns) { return TimePoint(ns); }
  [[nodiscard]] static constexpr TimePoint max() {
    return TimePoint(std::numeric_limits<std::int64_t>::max());
  }

  [[nodiscard]] constexpr std::int64_t nanos_since_epoch() const { return ns_; }
  [[nodiscard]] constexpr Duration since_epoch() const { return Duration::nanos(ns_); }
  [[nodiscard]] constexpr double seconds_since_epoch_f() const {
    return static_cast<double>(ns_) / 1e9;
  }

  constexpr TimePoint& operator+=(Duration d) { ns_ += d.count_nanos(); return *this; }
  constexpr TimePoint& operator-=(Duration d) { ns_ -= d.count_nanos(); return *this; }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint(t.ns_ + d.count_nanos());
  }
  friend constexpr TimePoint operator+(Duration d, TimePoint t) { return t + d; }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) {
    return TimePoint(t.ns_ - d.count_nanos());
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration::nanos(a.ns_ - b.ns_);
  }

  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit TimePoint(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

}  // namespace ronpath

#endif  // RONPATH_UTIL_TIME_H_
