// Plain-text and CSV table rendering for bench/report output.
//
// The bench binaries print the paper's tables; TextTable handles column
// sizing and alignment so the printed output is directly comparable to the
// rows in the paper. CsvWriter emits the same data machine-readably for
// plotting (Figures 2-6 are emitted as CSV series plus an ASCII preview).

#ifndef RONPATH_UTIL_TABLE_H_
#define RONPATH_UTIL_TABLE_H_

#include <cstddef>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace ronpath {

class TextTable {
 public:
  enum class Align { kLeft, kRight };

  // Column headers; every row must have the same arity.
  explicit TextTable(std::vector<std::string> headers);

  // Alignment defaults to left for column 0, right otherwise; override here.
  void set_align(std::size_t column, Align align);

  void add_row(std::vector<std::string> cells);
  // Convenience for mixed content; formats doubles with the given precision.
  [[nodiscard]] static std::string num(double v, int precision = 2);
  [[nodiscard]] static std::string num(std::int64_t v);
  // Renders "-" for missing values, matching the paper's tables.
  [[nodiscard]] static std::string opt_num(bool present, double v, int precision = 2);
  // "mean±half" confidence cell; collapses to num(mean) when half is 0
  // (single trial), so --trials 1 output matches the plain tables.
  [[nodiscard]] static std::string num_ci(double mean, double ci_half, int precision = 2);

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<Align> align_;
  std::vector<std::vector<std::string>> rows_;
};

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  // Writes one row; fields containing commas/quotes/newlines are quoted.
  void row(const std::vector<std::string>& cells);

 private:
  std::ostream& os_;
};

// ASCII rendering of a CDF curve so figure benches are readable in a
// terminal without a plotting toolchain.
struct AsciiSeries {
  std::string name;
  std::vector<double> xs;
  std::vector<double> ys;
};

// Plots y in [y_lo, y_hi] against x in [min xs, max xs] on a width x height
// character grid; one glyph per series.
void plot_ascii(std::ostream& os, const std::vector<AsciiSeries>& series, double y_lo,
                double y_hi, std::size_t width = 72, std::size_t height = 20,
                std::string_view x_label = "", std::string_view y_label = "");

}  // namespace ronpath

#endif  // RONPATH_UTIL_TABLE_H_
