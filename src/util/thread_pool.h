// Small work-stealing thread pool for embarrassingly parallel jobs.
//
// Each worker owns a deque: the owner pushes/pops at the back (LIFO, cache
// friendly), idle workers steal from the front of other workers' deques
// (FIFO, oldest work first). External submitters distribute round-robin.
// Tasks are plain std::function<void()>; result and exception transport is
// layered on top with std::packaged_task via async().
//
// The pool is deliberately minimal: it exists so the multi-trial experiment
// runner (core/trials.h) can shard independent simulations across cores.
// Determinism is the caller's job — tasks must not share mutable state, and
// outputs must be stored by task index, never by completion order.

#ifndef RONPATH_UTIL_THREAD_POOL_H_
#define RONPATH_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ronpath {

class ThreadPool {
 public:
  // Spawns `n_threads` workers; 0 is clamped to 1. Oversubscription beyond
  // the hardware is allowed (useful in tests), just wasteful.
  explicit ThreadPool(std::size_t n_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  // Enqueues a task. Safe to call from worker threads (the task lands on
  // the calling worker's own deque).
  void submit(std::function<void()> task);

  // Enqueues a callable and returns a future carrying its result or its
  // exception.
  template <typename F>
  [[nodiscard]] auto async(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    submit([task = std::move(task)]() { (*task)(); });
    return fut;
  }

  // Blocks until every submitted task has finished. Must not be called
  // from inside a pool task.
  void wait_idle();

  // Runs fn(0) ... fn(n-1) across at most `n_jobs` threads and rethrows
  // the first task exception (by index) after all tasks finish.
  // n_jobs <= 1 runs inline on the calling thread with no pool at all, so
  // single-job callers pay nothing and remain trivially deterministic.
  static void for_each_index(std::size_t n, std::size_t n_jobs,
                             const std::function<void(std::size_t)>& fn);

 private:
  struct Worker {
    std::deque<std::function<void()>> deque;
    std::mutex mutex;
  };

  void worker_loop(std::size_t self);
  // Pops from own back, else steals from another front; empty when none.
  [[nodiscard]] std::function<void()> take(std::size_t self);

  std::vector<std::unique_ptr<Worker>> queues_;
  std::vector<std::thread> workers_;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable idle_cv_;
  std::size_t pending_ = 0;  // queued + running, guarded by wake_mutex_
  std::size_t next_queue_ = 0;
  bool stop_ = false;
};

}  // namespace ronpath

#endif  // RONPATH_UTIL_THREAD_POOL_H_
