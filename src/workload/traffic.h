// Deterministic traffic-matrix generation.
//
// Expands a WorkloadSpec into the concrete flow list for one simulated
// window: per ordered site pair (s, d), flow starts follow a
// non-homogeneous Poisson process whose rate is the product of the two
// sites' diurnal activity factors (thinning against the pair's peak
// rate), each flow drawing a service class from the mix and a
// shifted-exponential packet count. Within a flow, packets are CBR at
// the class rate.
//
// Determinism and stability: every pair owns its own RNG stream,
// fork(pair_key) off a single workload root, so the generated flow set
// is a pure function of (spec, node count, window, root stream) —
// independent of pair iteration order, shard count, and thread count.
// The byte-stability tests pin exactly this. The final flow list is
// sorted by (start, src, dst, per-pair sequence), a total order with no
// ties across pairs.

#ifndef RONPATH_WORKLOAD_TRAFFIC_H_
#define RONPATH_WORKLOAD_TRAFFIC_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/time.h"
#include "workload/spec.h"

namespace ronpath {

struct Flow {
  ServiceClass cls = ServiceClass::kWeb;
  NodeId src = 0;
  NodeId dst = 0;
  TimePoint start;
  std::int64_t packets = 1;
  Duration interval;  // 1 / class rate

  // Send time of packet i (CBR within the flow).
  [[nodiscard]] TimePoint packet_time(std::int64_t i) const { return start + interval * i; }
};

// The diurnal activity factor for `site` at `t`, in [trough, 1]
// (cosine bump peaked at spec.peak_hour local time; the epoch is local
// midnight at site 0 and each site index lags by tz_spread_hours).
[[nodiscard]] double diurnal_factor(const WorkloadSpec& spec, NodeId site, TimePoint t);

class TrafficMatrix {
 public:
  // Generates flows starting in [start, end). `root` should be the
  // world's Rng(seed).fork("workload") so the generator never perturbs
  // (or is perturbed by) the underlay/overlay streams.
  TrafficMatrix(const WorkloadSpec& spec, std::size_t node_count, TimePoint start, TimePoint end,
                const Rng& root);

  [[nodiscard]] const std::vector<Flow>& flows() const { return flows_; }
  [[nodiscard]] std::int64_t total_packets() const { return total_packets_; }

 private:
  std::vector<Flow> flows_;
  std::int64_t total_packets_ = 0;
};

}  // namespace ronpath

#endif  // RONPATH_WORKLOAD_TRAFFIC_H_
