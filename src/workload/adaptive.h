// Closed-loop adaptive redundancy: per-(pair, class) control of how much
// protection a flow's packets get, driven by measured path loss.
//
// Control law (DESIGN.md §15):
//
//   est   = per-pair EWMA of primary-copy loss (alpha per data packet)
//   x     = clamp(1 - target / est, 0, 1)   improvement needed to reach
//                                           the class loss budget
//   y     = class capacity fraction          rate * bytes / access capacity
//   action = DesignSpace::classify_requirement(x, y, m / k)
//
// with m = pick_parity(k, est, block-failure target, m_max). The Figure 6
// machinery thus decides *per flow*: thin flows under moderate loss get
// duplication, fat flows get FEC (a duplicate would blow the access
// link's capacity limit), flows already inside budget stay single. The
// kReactive and kNone classifications both map to kSingle — best-path
// routing is always on, and when no scheme reaches the requirement the
// controller refuses to burn capacity for nothing.
//
// Hysteresis, composing with the PR 2 hold-down: at most one level
// transition per min_dwell, and de-escalation additionally requires the
// estimate to fall below exit_margin * target (a band below the enter
// threshold), so a flapping link cannot make the controller amplify the
// flap into redundancy churn. The transition counter is exposed and
// bounded by the flap test.

#ifndef RONPATH_WORKLOAD_ADAPTIVE_H_
#define RONPATH_WORKLOAD_ADAPTIVE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "model/design_space.h"
#include "util/time.h"

namespace ronpath {

namespace snap {
class Encoder;
class Decoder;
}  // namespace snap

enum class RedundancyLevel : std::uint8_t { kSingle = 0, kFec = 1, kDup = 2 };

[[nodiscard]] std::string_view to_string(RedundancyLevel level);

struct AdaptiveConfig {
  // EWMA smoothing per observed data packet.
  double loss_alpha = 0.05;
  // De-escalation band: leave a level only when est < exit_margin * target.
  double exit_margin = 0.5;
  // Minimum time between level transitions of one controller.
  Duration min_dwell = Duration::seconds(60);
  // FEC geometry: blocks of k data shards, up to m_max parity shards on
  // the disjoint detour, parity count chosen for this residual target.
  std::size_t fec_k = 8;
  std::size_t fec_m_max = 4;
  double fec_block_target = 1e-3;
  DesignSpaceParams design;
};

// One controller instance (the world keeps one per pair x class).
class AdaptiveController {
 public:
  // `target` is the class loss budget as a fraction (slo_loss_pct/100),
  // `capacity_fraction` the class's y axis value.
  AdaptiveController() = default;

  // Re-evaluates the level from the current loss estimate. Call on every
  // flow start and periodically within long flows.
  void update(const AdaptiveConfig& cfg, double est_loss, double target,
              double capacity_fraction, TimePoint now);

  [[nodiscard]] RedundancyLevel level() const { return level_; }
  // Parity count for the current estimate (kFec levels).
  [[nodiscard]] std::size_t parity(const AdaptiveConfig& cfg, double est_loss) const;
  [[nodiscard]] std::int64_t transitions() const { return transitions_; }

  void save_state(snap::Encoder& e) const;
  void restore_state(snap::Decoder& d);
  void check_invariants(std::vector<std::string>& out) const;

 private:
  RedundancyLevel level_ = RedundancyLevel::kSingle;
  TimePoint last_change_ = TimePoint::epoch() - Duration::days(1);  // first change is free
  std::int64_t transitions_ = 0;
};

// The open-loop classification: what level the design space recommends
// for this estimate, before hysteresis. Exposed for tests.
[[nodiscard]] RedundancyLevel desired_level(const AdaptiveConfig& cfg, double est_loss,
                                            double target, double capacity_fraction);

}  // namespace ronpath

#endif  // RONPATH_WORKLOAD_ADAPTIVE_H_
