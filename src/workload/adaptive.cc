#include "workload/adaptive.h"

#include <algorithm>

#include "fec/rate_select.h"
#include "snapshot/codec.h"

namespace ronpath {

std::string_view to_string(RedundancyLevel level) {
  switch (level) {
    case RedundancyLevel::kSingle: return "single";
    case RedundancyLevel::kFec: return "fec";
    case RedundancyLevel::kDup: return "dup";
  }
  return "?";
}

RedundancyLevel desired_level(const AdaptiveConfig& cfg, double est_loss, double target,
                              double capacity_fraction) {
  if (est_loss <= target) return RedundancyLevel::kSingle;
  const double x = std::clamp(1.0 - target / est_loss, 0.0, 1.0);
  const std::size_t m = pick_parity(cfg.fec_k, est_loss, cfg.fec_block_target, cfg.fec_m_max);
  const double overhead =
      static_cast<double>(m) / static_cast<double>(cfg.fec_k);
  const DesignSpace space(cfg.design);
  switch (space.classify_requirement(x, capacity_fraction, overhead)) {
    case RedundancyAction::kFec: return RedundancyLevel::kFec;
    case RedundancyAction::kDuplicate: return RedundancyLevel::kDup;
    case RedundancyAction::kReactive:
    case RedundancyAction::kNone: return RedundancyLevel::kSingle;
  }
  return RedundancyLevel::kSingle;
}

void AdaptiveController::update(const AdaptiveConfig& cfg, double est_loss, double target,
                                double capacity_fraction, TimePoint now) {
  const RedundancyLevel desired = desired_level(cfg, est_loss, target, capacity_fraction);
  if (desired == level_) return;
  if (now - last_change_ < cfg.min_dwell) return;  // dwell gate, both directions
  if (desired < level_ && est_loss >= cfg.exit_margin * target) return;  // hysteresis band
  level_ = desired;
  last_change_ = now;
  ++transitions_;
}

std::size_t AdaptiveController::parity(const AdaptiveConfig& cfg, double est_loss) const {
  // Never zero parity while at kFec: a block with no parity protects
  // nothing, and the level said protection is warranted.
  return std::max<std::size_t>(
      1, pick_parity(cfg.fec_k, est_loss, cfg.fec_block_target, cfg.fec_m_max));
}

void AdaptiveController::save_state(snap::Encoder& e) const {
  e.u8(static_cast<std::uint8_t>(level_));
  e.time(last_change_);
  e.i64(transitions_);
}

void AdaptiveController::restore_state(snap::Decoder& d) {
  const std::uint8_t lv = d.u8();
  if (lv > static_cast<std::uint8_t>(RedundancyLevel::kDup)) {
    throw snap::SnapshotError("adaptive controller: bad redundancy level");
  }
  level_ = static_cast<RedundancyLevel>(lv);
  last_change_ = d.time();
  transitions_ = d.i64();
}

void AdaptiveController::check_invariants(std::vector<std::string>& out) const {
  if (transitions_ < 0) out.push_back("adaptive: negative transition count");
  if (level_ != RedundancyLevel::kSingle && transitions_ == 0) {
    out.push_back("adaptive: non-single level with no recorded transition");
  }
}

}  // namespace ronpath
