#include "workload/world.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdio>
#include <stdexcept>

#include "snapshot/codec.h"

namespace ronpath {
namespace {

constexpr std::array<WorkloadPolicy, 3> kPolicies = {
    WorkloadPolicy::kProbeOnly, WorkloadPolicy::kStatic2, WorkloadPolicy::kAdaptive};

// Policy -> HybridSender mode. Every policy constructs the sender (the
// CellEnv fork order is fixed), but only kStatic2 and kAdaptive's kDup
// level ever call it, and those want unconditional duplication.
HybridMode sender_mode(WorkloadPolicy policy) {
  return policy == WorkloadPolicy::kProbeOnly ? HybridMode::kAdaptive
                                              : HybridMode::kAlwaysDuplicate;
}

const WorkloadConfig& validated(const WorkloadConfig& cfg) {
  const std::string err = cfg.spec.validate();
  if (!err.empty()) throw std::invalid_argument("workload spec: " + err);
  return cfg;
}

}  // namespace

std::string_view to_string(WorkloadPolicy policy) {
  switch (policy) {
    case WorkloadPolicy::kProbeOnly: return "probe-only";
    case WorkloadPolicy::kStatic2: return "static-2x";
    case WorkloadPolicy::kAdaptive: return "adaptive";
  }
  return "?";
}

std::span<const WorkloadPolicy> all_workload_policies() { return kPolicies; }

WorkloadWorld::WorkloadWorld(const Scenario& scenario, WorkloadPolicy policy,
                             const WorkloadConfig& cfg, std::uint64_t seed)
    : scenario_name_(scenario.name),
      dsl_(scenario.dsl),
      policy_(policy),
      cfg_(validated(cfg)),
      seed_(seed),
      env_(scenario, sender_mode(policy), cfg.cell, seed),
      traffic_(cfg_.spec, env_.topo.size(), measure_start(), end_time(),
               Rng(seed).fork("workload")) {
  nodes_ = env_.topo.size();
  // The packet schedule: every flow's CBR packets, clipped to the
  // measured window, in global (time, flow, index) order. The order is a
  // pure function of the traffic matrix, so replay is deterministic at
  // any step granularity.
  schedule_.reserve(static_cast<std::size_t>(traffic_.total_packets()));
  const std::vector<Flow>& flows = traffic_.flows();
  for (std::uint32_t fi = 0; fi < flows.size(); ++fi) {
    const Flow& f = flows[fi];
    for (std::int64_t i = 0; i < f.packets; ++i) {
      const TimePoint t = f.packet_time(i);
      if (t >= end_time()) break;
      schedule_.push_back({t, fi, i});
    }
  }
  std::sort(schedule_.begin(), schedule_.end(), [](const PacketEvent& a, const PacketEvent& b) {
    if (a.t != b.t) return a.t < b.t;
    if (a.flow != b.flow) return a.flow < b.flow;
    return a.index < b.index;
  });

  progress_.resize(flows.size());
  buckets_.assign(nodes_, AccessBucket{0.0, measure_start()});
  loss_est_.assign(nodes_ * nodes_, 0.0);
  ctrl_.assign(nodes_ * nodes_ * kServiceClassCount, AdaptiveController{});
}

Duration WorkloadWorld::charge_access(NodeId src, double bytes, TimePoint t) {
  AccessBucket& b = buckets_[src];
  const double cap = cfg_.spec.access_bytes_per_s;
  const double drained = (t - b.last).to_seconds_f() * cap;
  b.backlog_bytes = std::max(0.0, b.backlog_bytes - drained);
  b.last = t;
  const Duration queue_delay = Duration::from_seconds_f(b.backlog_bytes / cap);
  b.backlog_bytes += bytes;
  return queue_delay;
}

void WorkloadWorld::score_packet(const Flow& flow, FlowProgress& fp, bool delivered,
                                 Duration latency) {
  const std::size_t cls = static_cast<std::size_t>(flow.cls);
  const ClassSpec& cs = cfg_.spec.classes[cls];
  const bool slo_ok = delivered && latency <= cs.slo_latency;
  metrics_[cls].note_packet(delivered, latency, slo_ok);
  if (delivered) {
    if (fp.burst_run > 0) {
      metrics_[cls].note_loss_burst(fp.burst_run);
      fp.burst_run = 0;
    }
  } else {
    ++fp.burst_run;
  }
}

void WorkloadWorld::flush_block(std::uint32_t flow_idx, TimePoint t) {
  FlowProgress& fp = progress_[flow_idx];
  if (fp.block.empty()) return;
  const Flow& flow = traffic_.flows()[flow_idx];
  const std::size_t cls = static_cast<std::size_t>(flow.cls);
  const ClassSpec& cs = cfg_.spec.classes[cls];
  const std::size_t pair = pair_index(flow.src, flow.dst);
  const std::size_t k_eff = fp.block.size();
  const std::size_t m =
      ctrl_[pair * kServiceClassCount + cls].parity(cfg_.adaptive, loss_est_[pair]);

  // Parity shards ride the duplicate's disjoint detour relative to the
  // current primary path (shared disjointness logic with HybridSender).
  const PathSpec primary = env_.overlay->route(flow.src, flow.dst, RouteTag::kLoss);
  std::size_t delivered_shards = 0;
  TimePoint last_arrival = t;
  std::uint64_t lost_data = 0;
  for (const PendingShard& s : fp.block) {
    if (s.delivered) {
      ++delivered_shards;
      last_arrival = std::max(last_arrival, s.arrival);
    } else {
      ++lost_data;
    }
  }
  for (std::size_t j = 0; j < m; ++j) {
    const PathSpec alt = env_.sender->alternate_path(flow.src, flow.dst, primary);
    const OverlaySendResult res = env_.overlay->send(alt, t);
    const Duration queue_delay = charge_access(flow.src, cs.packet_bytes, t);
    ++copies_;
    if (res.delivered()) {
      ++delivered_shards;
      last_arrival = std::max(last_arrival, t + res.net.latency + queue_delay);
    }
  }
  ++fec_blocks_;

  // RS(k_eff, m): every lost data shard reconstructs iff at least k_eff
  // of the k_eff + m shards arrived, at the block-completion latency.
  const bool recovered = delivered_shards >= k_eff;
  for (const PendingShard& s : fp.block) {
    if (s.delivered) {
      score_packet(flow, fp, true, s.arrival - s.sent);
    } else if (recovered) {
      ++fec_recovered_;
      score_packet(flow, fp, true, last_arrival - s.sent);
    } else {
      score_packet(flow, fp, false, Duration::zero());
    }
  }
  fp.block.clear();
}

void WorkloadWorld::finish_flow(std::uint32_t flow_idx, TimePoint t) {
  FlowProgress& fp = progress_[flow_idx];
  flush_block(flow_idx, t);
  if (fp.burst_run > 0) {
    const Flow& flow = traffic_.flows()[flow_idx];
    metrics_[static_cast<std::size_t>(flow.cls)].note_loss_burst(fp.burst_run);
    fp.burst_run = 0;
  }
  fp.burst_flushed = true;
}

void WorkloadWorld::send_one(const PacketEvent& ev) {
  const Flow& flow = traffic_.flows()[ev.flow];
  FlowProgress& fp = progress_[ev.flow];
  const std::size_t cls = static_cast<std::size_t>(flow.cls);
  const ClassSpec& cs = cfg_.spec.classes[cls];
  const std::size_t pair = pair_index(flow.src, flow.dst);

  RedundancyLevel level = RedundancyLevel::kSingle;
  switch (policy_) {
    case WorkloadPolicy::kProbeOnly:
      level = RedundancyLevel::kSingle;
      break;
    case WorkloadPolicy::kStatic2:
      level = RedundancyLevel::kDup;
      break;
    case WorkloadPolicy::kAdaptive: {
      AdaptiveController& ctrl = ctrl_[pair * kServiceClassCount + cls];
      ctrl.update(cfg_.adaptive, loss_est_[pair], cs.slo_loss_pct / 100.0,
                  cs.capacity_fraction(cfg_.spec.access_bytes_per_s), ev.t);
      level = ctrl.level();
      break;
    }
  }
  // A level change with an open block closes the block under the old
  // protection so packet scoring stays in flow order.
  if (level != RedundancyLevel::kFec && !fp.block.empty()) flush_block(ev.flow, ev.t);

  bool primary_lost = false;
  switch (level) {
    case RedundancyLevel::kSingle: {
      const OverlaySendResult res =
          env_.overlay->send(env_.overlay->route(flow.src, flow.dst, RouteTag::kLoss), ev.t);
      const Duration queue_delay = charge_access(flow.src, cs.packet_bytes, ev.t);
      ++copies_;
      primary_lost = !res.delivered();
      score_packet(flow, fp, res.delivered(), res.net.latency + queue_delay);
      break;
    }
    case RedundancyLevel::kDup: {
      const HybridOutcome out = env_.sender->send(flow.src, flow.dst, ev.t);
      const Duration queue_delay = charge_access(
          flow.src, cs.packet_bytes * static_cast<double>(out.probe.copies.size()), ev.t);
      copies_ += static_cast<std::int64_t>(out.probe.copies.size());
      primary_lost = out.probe.copies.empty() || !out.probe.copies[0].delivered();
      const bool delivered = out.delivered();
      const Duration latency =
          delivered ? out.probe.first_arrival() - ev.t + queue_delay : Duration::zero();
      score_packet(flow, fp, delivered, latency);
      break;
    }
    case RedundancyLevel::kFec: {
      const OverlaySendResult res =
          env_.overlay->send(env_.overlay->route(flow.src, flow.dst, RouteTag::kLoss), ev.t);
      const Duration queue_delay = charge_access(flow.src, cs.packet_bytes, ev.t);
      ++copies_;
      primary_lost = !res.delivered();
      PendingShard shard;
      shard.sent = ev.t;
      shard.delivered = res.delivered();
      shard.arrival = res.delivered() ? ev.t + res.net.latency + queue_delay : ev.t;
      fp.block.push_back(shard);
      if (fp.block.size() >= cfg_.adaptive.fec_k) flush_block(ev.flow, ev.t);
      break;
    }
  }
  ++app_packets_;
  loss_est_[pair] =
      (1.0 - cfg_.adaptive.loss_alpha) * loss_est_[pair] +
      cfg_.adaptive.loss_alpha * (primary_lost ? 1.0 : 0.0);
  if (ev.index == flow.packets - 1) finish_flow(ev.flow, ev.t);
}

void WorkloadWorld::advance_to(std::size_t packet_index) {
  if (packet_index > schedule_.size()) packet_index = schedule_.size();
  if (!warmed_) {
    env_.sched.run_until(measure_start());
    warmed_ = true;
  }
  while (next_packet_ < packet_index) {
    const PacketEvent& ev = schedule_[next_packet_];
    env_.sched.run_until(ev.t);
    send_one(ev);
    ++next_packet_;
  }
}

void WorkloadWorld::run_to_end() {
  advance_to(schedule_.size());
  if (!drained_) {
    env_.sched.run_until(end_time());
    // Flows clipped by the window end never saw their last packet; close
    // their blocks and burst runs in flow order.
    for (std::uint32_t fi = 0; fi < progress_.size(); ++fi) {
      if (!progress_[fi].burst_flushed) finish_flow(fi, end_time());
    }
    drained_ = true;
  }
}

double WorkloadWorld::overhead_factor() const {
  return app_packets_ > 0
             ? static_cast<double>(copies_) / static_cast<double>(app_packets_)
             : 1.0;
}

std::int64_t WorkloadWorld::transitions() const {
  std::int64_t total = 0;
  for (const AdaptiveController& c : ctrl_) total += c.transitions();
  return total;
}

std::uint64_t WorkloadWorld::fingerprint() const {
  using snap::fnv1a;
  using snap::fnv1a_u64;
  const auto f = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  std::uint64_t h = fnv1a(scenario_name_);
  h = fnv1a(dsl_, h);
  h = fnv1a_u64(static_cast<std::uint64_t>(policy_), h);
  h = fnv1a_u64(seed_, h);
  const FaultMatrixConfig& c = cfg_.cell;
  h = fnv1a_u64(c.node_count, h);
  h = fnv1a_u64(static_cast<std::uint64_t>(c.warmup.count_nanos()), h);
  h = fnv1a_u64(static_cast<std::uint64_t>(c.measured.count_nanos()), h);
  h = fnv1a_u64(c.graceful_degradation ? 1 : 0, h);
  // RNG discipline only, not the shard count (shard-count-invariant).
  h = fnv1a_u64(c.shards > 0 ? 1 : 0, h);
  h = fnv1a_u64(c.synth_nodes, h);
  h = fnv1a_u64(c.overlay_fanout, h);
  h = fnv1a_u64(c.overlay_landmarks, h);
  const WorkloadSpec& s = cfg_.spec;
  h = fnv1a_u64(f(s.population), h);
  h = fnv1a_u64(static_cast<std::uint64_t>(s.peak_hour), h);
  h = fnv1a_u64(f(s.trough), h);
  h = fnv1a_u64(f(s.tz_spread_hours), h);
  h = fnv1a_u64(f(s.flows_per_user_hour), h);
  h = fnv1a_u64(f(s.mean_flow_packets), h);
  h = fnv1a_u64(f(s.access_bytes_per_s), h);
  for (const HotPair& hp : s.hot_pairs) {
    h = fnv1a_u64(hp.src, h);
    h = fnv1a_u64(hp.dst, h);
    h = fnv1a_u64(f(hp.weight), h);
  }
  for (const ClassSpec& cs : s.classes) {
    h = fnv1a_u64(f(cs.mix), h);
    h = fnv1a_u64(f(cs.rate_pps), h);
    h = fnv1a_u64(f(cs.packet_bytes), h);
    h = fnv1a_u64(static_cast<std::uint64_t>(cs.slo_latency.count_nanos()), h);
    h = fnv1a_u64(f(cs.slo_loss_pct), h);
  }
  const AdaptiveConfig& a = cfg_.adaptive;
  h = fnv1a_u64(f(a.loss_alpha), h);
  h = fnv1a_u64(f(a.exit_margin), h);
  h = fnv1a_u64(static_cast<std::uint64_t>(a.min_dwell.count_nanos()), h);
  h = fnv1a_u64(a.fec_k, h);
  h = fnv1a_u64(a.fec_m_max, h);
  h = fnv1a_u64(f(a.fec_block_target), h);
  return h;
}

void WorkloadWorld::save_state(snap::Encoder& e) const {
  e.tag("WKLD");
  e.b(warmed_);
  e.b(drained_);
  e.u64(next_packet_);
  e.i64(app_packets_);
  e.i64(copies_);
  e.i64(fec_blocks_);
  e.i64(fec_recovered_);
  e.u64(progress_.size());
  for (const FlowProgress& fp : progress_) {
    e.u64(fp.burst_run);
    e.b(fp.burst_flushed);
    e.u64(fp.block.size());
    for (const PendingShard& s : fp.block) {
      e.time(s.sent);
      e.time(s.arrival);
      e.b(s.delivered);
    }
  }
  e.u64(buckets_.size());
  for (const AccessBucket& b : buckets_) {
    e.f64(b.backlog_bytes);
    e.time(b.last);
  }
  e.u64(loss_est_.size());
  for (const double v : loss_est_) e.f64(v);
  e.u64(ctrl_.size());
  for (const AdaptiveController& c : ctrl_) c.save_state(e);
  for (const ClassMetrics& m : metrics_) m.save_state(e);
  // Scheduler clock first on restore, then owners re-arm (same
  // discipline as snapshot/world.cc).
  e.time(env_.sched.now());
  e.u64(env_.sched.next_seq());
  e.u64(env_.sched.dispatched_events());
  env_.net->save_state(e);
  env_.overlay->save_state(e);
  env_.sender->save_state(e);
}

void WorkloadWorld::restore_state(snap::Decoder& d) {
  d.expect_tag("WKLD");
  warmed_ = d.b();
  drained_ = d.b();
  next_packet_ = d.u64();
  if (next_packet_ > schedule_.size()) {
    throw snap::SnapshotError("workload snapshot: packet cursor past the schedule");
  }
  app_packets_ = d.i64();
  copies_ = d.i64();
  fec_blocks_ = d.i64();
  fec_recovered_ = d.i64();
  if (d.count(1) != progress_.size()) {
    throw snap::SnapshotError("workload snapshot: flow count mismatch");
  }
  for (FlowProgress& fp : progress_) {
    fp.burst_run = d.u64();
    fp.burst_flushed = d.b();
    const std::uint64_t shards = d.count(17);
    fp.block.resize(shards);
    for (PendingShard& s : fp.block) {
      s.sent = d.time();
      s.arrival = d.time();
      s.delivered = d.b();
    }
  }
  if (d.count(16) != buckets_.size()) {
    throw snap::SnapshotError("workload snapshot: bucket count mismatch");
  }
  for (AccessBucket& b : buckets_) {
    b.backlog_bytes = d.f64();
    b.last = d.time();
  }
  if (d.count(8) != loss_est_.size()) {
    throw snap::SnapshotError("workload snapshot: estimator count mismatch");
  }
  for (double& v : loss_est_) v = d.f64();
  if (d.count(17) != ctrl_.size()) {
    throw snap::SnapshotError("workload snapshot: controller count mismatch");
  }
  for (AdaptiveController& c : ctrl_) c.restore_state(d);
  for (ClassMetrics& m : metrics_) m.restore_state(d);
  const TimePoint now = d.time();
  const std::uint64_t next_seq = d.u64();
  const std::uint64_t dispatched = d.u64();
  env_.sched.restore_clock(now, next_seq, dispatched);
  env_.net->restore_state(d);
  env_.overlay->restore_state(d);
  env_.sender->restore_state(d);
  d.expect_done();
}

std::string WorkloadWorld::report() const {
  char buf[256];
  std::string out;
  out += "== workload world ==\n";
  out += "scenario " + scenario_name_ + " | policy " + std::string(to_string(policy_)) +
         " | seed " + std::to_string(seed_) + " | nodes " + std::to_string(nodes_) + "\n";
  std::snprintf(buf, sizeof buf, "clock %lldns | packets %zu/%zu | flows %zu\n",
                static_cast<long long>(env_.sched.now().since_epoch().count_nanos()),
                next_packet_, schedule_.size(), traffic_.flows().size());
  out += buf;
  for (std::size_t c = 0; c < kServiceClassCount; ++c) {
    const ClassMetrics& m = metrics_[c];
    const ClassSpec& cs = cfg_.spec.classes[c];
    std::snprintf(buf, sizeof buf,
                  "%-5s sent %llu delivered %llu loss %.10f%% p50 %.6fms p99 %.6fms "
                  "p999 %.6fms slo %.10f%% mos %.6f bursts %llu\n",
                  std::string(to_string(static_cast<ServiceClass>(c))).c_str(),
                  static_cast<unsigned long long>(m.sent()),
                  static_cast<unsigned long long>(m.delivered()), m.loss_pct(),
                  m.p50().to_millis_f(), m.p99().to_millis_f(), m.p999().to_millis_f(),
                  m.slo_attainment_pct(), m.mos(cs.slo_latency),
                  static_cast<unsigned long long>(m.bursts()));
    out += buf;
  }
  std::snprintf(buf, sizeof buf,
                "overhead %.10f | transitions %lld | fec blocks %lld recovered %lld\n",
                overhead_factor(), static_cast<long long>(transitions()),
                static_cast<long long>(fec_blocks_), static_cast<long long>(fec_recovered_));
  out += buf;
  // State digest: the serialized workload-layer state, so soak restore
  // equivalence can compare one line instead of the full payload.
  snap::Encoder e;
  for (const ClassMetrics& m : metrics_) m.save_state(e);
  std::uint64_t hash = snap::fnv1a(std::string_view(
      reinterpret_cast<const char*>(e.bytes().data()), e.bytes().size()));
  hash = snap::fnv1a_u64(next_packet_, hash);
  std::snprintf(buf, sizeof buf, "metrics-hash %016llx\n",
                static_cast<unsigned long long>(hash));
  out += buf;
  return out;
}

void WorkloadWorld::check_invariants(std::vector<std::string>& out) const {
  env_.sched.check_invariants(out);
  env_.net->check_invariants(out);
  env_.overlay->check_invariants(env_.sched.now(), out);
  env_.sender->check_invariants(out);
  for (const AdaptiveController& c : ctrl_) c.check_invariants(out);
  for (const ClassMetrics& m : metrics_) m.check_invariants(out);
  if (next_packet_ > schedule_.size()) {
    out.push_back("workload: packet cursor past the schedule");
  }
  if (!warmed_ && next_packet_ > 0) {
    out.push_back("workload: packets sent before warmup completed");
  }
  if (drained_ && next_packet_ != schedule_.size()) {
    out.push_back("workload: drained flag set before all packets were sent");
  }
  std::uint64_t scored = 0;
  for (const ClassMetrics& m : metrics_) scored += m.sent();
  std::uint64_t pending = 0;
  for (const FlowProgress& fp : progress_) pending += fp.block.size();
  if (scored + pending != next_packet_) {
    out.push_back("workload: scored + pending packets disagree with the cursor");
  }
  if (copies_ < app_packets_) {
    out.push_back("workload: fewer copies than application packets");
  }
}

}  // namespace ronpath
