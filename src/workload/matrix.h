// The workload matrix: every redundancy policy through every canonical
// fault scenario, scored by user-perceived per-class metrics.
//
// One cell = one (scenario, policy) WorkloadWorld run to completion.
// Cells are pure functions of (scenario, policy, config, seed) and are
// stored by index, so the matrix — and its formatted report — is
// byte-identical at any --jobs value, and (for shards > 0) at any
// shard count.

#ifndef RONPATH_WORKLOAD_MATRIX_H_
#define RONPATH_WORKLOAD_MATRIX_H_

#include <array>
#include <span>
#include <string>
#include <vector>

#include "fault/scenarios.h"
#include "workload/world.h"

namespace ronpath {

// Per-class results of one cell, extracted from ClassMetrics.
struct ClassCell {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  double loss_pct = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double slo_pct = 0.0;
  double mos = 1.0;
  std::uint64_t bursts = 0;
};

struct WorkloadCell {
  std::string scenario;
  WorkloadPolicy policy = WorkloadPolicy::kProbeOnly;
  std::array<ClassCell, kServiceClassCount> classes;
  double overhead = 1.0;
  std::int64_t transitions = 0;
  std::int64_t fec_blocks = 0;
  std::int64_t fec_recovered = 0;
};

struct WorkloadMatrixResult {
  WorkloadConfig cfg;
  std::uint64_t seed = 0;
  // Scenario-major, policy-minor, in canonical order.
  std::vector<WorkloadCell> cells;
};

// Runs one cell to completion and extracts its summary.
[[nodiscard]] WorkloadCell run_workload_cell(const Scenario& scenario, WorkloadPolicy policy,
                                             const WorkloadConfig& cfg, std::uint64_t seed);

// The full matrix, sharded across up to n_jobs threads (results stored
// by index, never by completion order).
[[nodiscard]] WorkloadMatrixResult run_workload_matrix(const WorkloadConfig& cfg,
                                                       std::span<const Scenario> scenarios,
                                                       std::uint64_t seed, int n_jobs);

// Deterministic text report: per-scenario per-class tables plus the
// cross-policy SLO-attainment matrix the acceptance gate reads.
[[nodiscard]] std::string format_workload_matrix(const WorkloadMatrixResult& result,
                                                 std::span<const Scenario> scenarios);

}  // namespace ronpath

#endif  // RONPATH_WORKLOAD_MATRIX_H_
