#include "workload/spec.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <vector>

namespace ronpath {
namespace {

// Same lexer shape as fault/fault.cc: whitespace-separated tokens, '#'
// starts a comment, tokens are views into the line so pointer arithmetic
// recovers 1-based columns for diagnostics.
std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    if (i >= line.size() || line[i] == '#') break;
    std::size_t j = i;
    while (j < line.size() && !std::isspace(static_cast<unsigned char>(line[j])) &&
           line[j] != '#') {
      ++j;
    }
    out.push_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

// Full-token double. std::from_chars accepts "inf" and "nan", so every
// caller must range-check with std::isfinite — the strictness this layer
// exists for lives in those checks, not here.
std::optional<double> parse_number(std::string_view tok) {
  double v = 0.0;
  const auto [end, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (ec != std::errc() || end != tok.data() + tok.size()) return std::nullopt;
  return v;
}

// "1.5%" or "1.5" -> 1.5 (percent units either way).
std::optional<double> parse_percent(std::string_view tok) {
  if (!tok.empty() && tok.back() == '%') tok.remove_suffix(1);
  return parse_number(tok);
}

// Duration literal: NUMBER followed by ms|s|m|h, as in the fault DSL.
std::optional<Duration> parse_duration_token(std::string_view tok) {
  std::size_t unit_at = tok.size();
  while (unit_at > 0 && !std::isdigit(static_cast<unsigned char>(tok[unit_at - 1])) &&
         tok[unit_at - 1] != '.') {
    --unit_at;
  }
  const std::string_view num = tok.substr(0, unit_at);
  const std::string_view unit = tok.substr(unit_at);
  if (num.empty()) return std::nullopt;
  const auto v = parse_number(num);
  if (!v || !std::isfinite(*v) || *v < 0.0) return std::nullopt;
  if (unit == "ms") return Duration::from_millis_f(*v);
  if (unit == "s") return Duration::from_seconds_f(*v);
  if (unit == "m") return Duration::from_seconds_f(*v * 60.0);
  if (unit == "h") return Duration::from_seconds_f(*v * 3600.0);
  return std::nullopt;
}

std::optional<NodeId> parse_node(std::string_view tok) {
  unsigned v = 0;
  const auto [end, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (ec != std::errc() || end != tok.data() + tok.size() || v >= kInvalidNode) {
    return std::nullopt;
  }
  return static_cast<NodeId>(v);
}

std::optional<ServiceClass> parse_class_name(std::string_view tok) {
  for (std::size_t c = 0; c < kServiceClassCount; ++c) {
    if (tok == to_string(static_cast<ServiceClass>(c))) return static_cast<ServiceClass>(c);
  }
  return std::nullopt;
}

}  // namespace

WorkloadSpec WorkloadSpec::defaults() {
  WorkloadSpec s;
  s.hot_pairs = {{0, 1, 8.0}};
  s.classes[static_cast<std::size_t>(ServiceClass::kVoip)] =
      {0.20, 50.0, 160.0, Duration::millis(150), 1.0};
  s.classes[static_cast<std::size_t>(ServiceClass::kVideo)] =
      {0.20, 30.0, 1200.0, Duration::millis(300), 2.0};
  s.classes[static_cast<std::size_t>(ServiceClass::kWeb)] =
      {0.40, 10.0, 600.0, Duration::millis(500), 5.0};
  s.classes[static_cast<std::size_t>(ServiceClass::kBulk)] =
      {0.20, 20.0, 1400.0, Duration::seconds(2), 10.0};
  return s;
}

std::string WorkloadSpec::validate() const {
  const auto bad = [](double v) { return !std::isfinite(v) || v < 0.0; };
  if (bad(population) || population <= 0.0) return "population must be positive and finite";
  if (peak_hour < 0 || peak_hour > 23) return "peak-hour must be in [0, 23]";
  if (bad(trough) || trough <= 0.0 || trough > 1.0) return "trough must be in (0, 1]";
  if (bad(tz_spread_hours)) return "tz-spread must be non-negative and finite";
  if (bad(flows_per_user_hour) || flows_per_user_hour <= 0.0) {
    return "flows-per-user-hour must be positive and finite";
  }
  if (bad(mean_flow_packets) || mean_flow_packets < 1.0) {
    return "flow-packets must be >= 1 and finite";
  }
  if (bad(access_bytes_per_s) || access_bytes_per_s <= 0.0) {
    return "access-capacity must be positive and finite";
  }
  for (const HotPair& hp : hot_pairs) {
    if (hp.src == hp.dst) return "hot-pair src and dst must differ";
    if (bad(hp.weight) || hp.weight <= 0.0) return "hot-pair weight must be positive and finite";
  }
  double mix_sum = 0.0;
  for (std::size_t c = 0; c < kServiceClassCount; ++c) {
    const ClassSpec& cs = classes[c];
    const std::string name(to_string(static_cast<ServiceClass>(c)));
    if (bad(cs.mix)) return "class " + name + ": mix must be non-negative and finite";
    if (bad(cs.rate_pps) || cs.rate_pps <= 0.0) {
      return "class " + name + ": rate must be positive and finite";
    }
    if (bad(cs.packet_bytes) || cs.packet_bytes <= 0.0) {
      return "class " + name + ": bytes must be positive and finite";
    }
    if (cs.slo_latency <= Duration::zero()) {
      return "class " + name + ": slo-latency must be positive";
    }
    if (bad(cs.slo_loss_pct) || cs.slo_loss_pct > 100.0) {
      return "class " + name + ": slo-loss must be in [0, 100]%";
    }
    mix_sum += cs.mix;
  }
  if (std::abs(mix_sum - 1.0) > 1e-6) return "class mixes must sum to 1";
  return "";
}

std::optional<WorkloadSpec> WorkloadSpec::parse(std::string_view text, std::string* error) {
  WorkloadSpec spec = defaults();
  int line_no = 0;
  auto fail = [&](std::size_t col, const std::string& msg) -> std::optional<WorkloadSpec> {
    if (error) {
      *error = "line " + std::to_string(line_no) + ", col " + std::to_string(col) + ": " + msg;
    }
    return std::nullopt;
  };

  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    ++line_no;
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;

    const auto tok = tokenize(line);
    if (tok.empty()) continue;

    std::size_t i = 0;
    auto next = [&]() -> std::optional<std::string_view> {
      if (i >= tok.size()) return std::nullopt;
      return tok[i++];
    };
    const auto col_of = [&](std::string_view t) {
      return static_cast<std::size_t>(t.data() - line.data()) + 1;
    };
    const auto end_col = [&]() {
      if (i == 0) return std::size_t{1};
      const std::string_view last = tok[i - 1];
      return col_of(last) + last.size();
    };
    // Shared "KEY NUMBER" scalar field: strict full-token parse, then the
    // finite/sign policy the bugfix sweep is about.
    bool failed = false;
    std::size_t fail_col = 0;
    std::string fail_msg;
    const auto scalar = [&](std::string_view key, double min_v, double max_v) -> double {
      const auto vt = next();
      if (!vt) {
        failed = true;
        fail_col = end_col();
        fail_msg = "expected a number after '" + std::string(key) + "'";
        return 0.0;
      }
      const auto v = parse_number(*vt);
      if (!v) {
        failed = true;
        fail_col = col_of(*vt);
        fail_msg = "bad number \"" + std::string(*vt) + "\"";
        return 0.0;
      }
      if (!std::isfinite(*v)) {
        failed = true;
        fail_col = col_of(*vt);
        fail_msg = "non-finite value \"" + std::string(*vt) + "\"";
        return 0.0;
      }
      if (*v < min_v || *v > max_v) {
        failed = true;
        fail_col = col_of(*vt);
        fail_msg = "value " + std::string(*vt) + " out of range";
        return 0.0;
      }
      return *v;
    };

    const std::string_view head = *next();
    if (head == "population") {
      spec.population = scalar(head, 1e-9, 1e12);
    } else if (head == "peak-hour") {
      spec.peak_hour = static_cast<int>(scalar(head, 0, 23));
    } else if (head == "trough") {
      spec.trough = scalar(head, 1e-9, 1.0);
    } else if (head == "tz-spread") {
      spec.tz_spread_hours = scalar(head, 0.0, 24.0);
    } else if (head == "flows-per-user-hour") {
      spec.flows_per_user_hour = scalar(head, 1e-9, 1e9);
    } else if (head == "flow-packets") {
      spec.mean_flow_packets = scalar(head, 1.0, 1e9);
    } else if (head == "access-capacity") {
      spec.access_bytes_per_s = scalar(head, 1e-9, 1e12) * 1024.0;  // KB/s on the wire format
    } else if (head == "hot-pair") {
      HotPair hp;
      const auto src_tok = next();
      if (!src_tok) return fail(end_col(), "expected a source site id");
      const auto src = parse_node(*src_tok);
      if (!src) return fail(col_of(*src_tok), "bad site id \"" + std::string(*src_tok) + "\"");
      const auto dst_tok = next();
      if (!dst_tok) return fail(end_col(), "expected a destination site id");
      const auto dst = parse_node(*dst_tok);
      if (!dst) return fail(col_of(*dst_tok), "bad site id \"" + std::string(*dst_tok) + "\"");
      if (*src == *dst) return fail(col_of(*dst_tok), "hot-pair src and dst must differ");
      const auto kw = next();
      if (!kw || *kw != "weight") return fail(end_col(), "expected 'weight'");
      hp.src = *src;
      hp.dst = *dst;
      hp.weight = scalar("weight", 1e-9, 1e9);
      if (!failed) spec.hot_pairs.push_back(hp);
    } else if (head == "class") {
      const auto name_tok = next();
      if (!name_tok) return fail(end_col(), "expected a class name (voip|video|web|bulk)");
      const auto cls = parse_class_name(*name_tok);
      if (!cls) {
        return fail(col_of(*name_tok),
                    "unknown class \"" + std::string(*name_tok) + "\" (want voip|video|web|bulk)");
      }
      ClassSpec& cs = spec.classes[static_cast<std::size_t>(*cls)];
      while (!failed && i < tok.size()) {
        const std::string_view key = *next();
        if (key == "mix") {
          cs.mix = scalar(key, 0.0, 1.0);
        } else if (key == "rate") {
          cs.rate_pps = scalar(key, 1e-9, 1e9);
        } else if (key == "bytes") {
          cs.packet_bytes = scalar(key, 1.0, 1e9);
        } else if (key == "slo-latency") {
          const auto vt = next();
          if (!vt) return fail(end_col(), "expected a duration after 'slo-latency'");
          const auto d = parse_duration_token(*vt);
          if (!d || d->is_zero()) {
            return fail(col_of(*vt),
                        "bad duration \"" + std::string(*vt) + "\" (want e.g. 150ms, 2s)");
          }
          cs.slo_latency = *d;
        } else if (key == "slo-loss") {
          const auto vt = next();
          if (!vt) return fail(end_col(), "expected a percentage after 'slo-loss'");
          const auto v = parse_percent(*vt);
          if (!v) return fail(col_of(*vt), "bad percentage \"" + std::string(*vt) + "\"");
          if (!std::isfinite(*v)) {
            return fail(col_of(*vt), "non-finite value \"" + std::string(*vt) + "\"");
          }
          if (*v < 0.0 || *v > 100.0) {
            return fail(col_of(*vt), "value " + std::string(*vt) + " out of range");
          }
          cs.slo_loss_pct = *v;
        } else {
          return fail(col_of(key), "unknown class field \"" + std::string(key) +
                                       "\" (want mix|rate|bytes|slo-latency|slo-loss)");
        }
      }
    } else {
      return fail(col_of(head), "unknown directive \"" + std::string(head) + "\"");
    }
    if (failed) return fail(fail_col, fail_msg);
    if (i < tok.size()) {
      return fail(col_of(tok[i]), "trailing token \"" + std::string(tok[i]) + "\"");
    }
  }

  const std::string semantic = spec.validate();
  if (!semantic.empty()) {
    if (error) *error = "line " + std::to_string(line_no) + ", col 1: " + semantic;
    return std::nullopt;
  }
  return spec;
}

}  // namespace ronpath
