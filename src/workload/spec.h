// Workload specification: the traffic-matrix model and per-class SLOs.
//
// A WorkloadSpec describes a population of users spread over the overlay
// sites, the diurnal rhythm of their activity, and the four service
// classes their flows belong to (VoIP / video / web / bulk), each with a
// packet rate, packet size, and an SLO (one-way latency bound plus a
// loss budget). It also carries the per-site access-link capacity that
// turns the Figure 6 "fraction of capacity used by the data flow" axis
// into concrete accounting: a class's capacity share is
// rate_pps * packet_bytes / access capacity, and every redundant copy
// (duplicate or FEC parity) drains the same bucket.
//
// Specs parse from a line-oriented DSL in the fault-schedule style
// (fault/fault.h): '#' comments, whitespace tokens, and diagnostics of
// the form "line N, col C: msg". Parsing is strict: every numeric field
// rejects non-finite and negative values at parse time (std::from_chars
// happily reads "inf" and "nan"; we do not).
//
//   population 400            # users per site at the diurnal peak
//   peak-hour 14              # local hour of peak activity [0, 23]
//   trough 0.25               # off-peak activity floor, fraction of peak
//   tz-spread 2               # hours of phase lag per site index
//   flows-per-user-hour 0.5   # flow starts per active user per hour
//   flow-packets 40           # mean packets per flow (shifted exponential)
//   access-capacity 64        # per-site access link, kilobytes per second
//   hot-pair 0 1 weight 8     # extra destination weight for one pair
//   class voip mix 0.2 rate 50 bytes 160 slo-latency 150ms slo-loss 1%

#ifndef RONPATH_WORKLOAD_SPEC_H_
#define RONPATH_WORKLOAD_SPEC_H_

#include <array>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "measure/perceived.h"
#include "util/time.h"
#include "wire/packet.h"

namespace ronpath {

struct ClassSpec {
  double mix = 0.25;          // fraction of flows in this class
  double rate_pps = 10.0;     // packets per second within a flow
  double packet_bytes = 500;  // bytes per packet (capacity accounting)
  Duration slo_latency = Duration::millis(500);  // one-way bound
  double slo_loss_pct = 1.0;  // loss budget, percent

  // Offered load of one flow as a fraction of the access capacity
  // (the Figure 6 y axis).
  [[nodiscard]] double capacity_fraction(double access_bytes_per_s) const {
    return rate_pps * packet_bytes / access_bytes_per_s;
  }
};

struct HotPair {
  NodeId src = 0;
  NodeId dst = 1;
  double weight = 1.0;  // multiplies the uniform destination weight
};

struct WorkloadSpec {
  // Diurnal user populations: site s at time t has
  //   population * (trough + (1 - trough) * (1 + cos(2*pi*(h - peak)/24)) / 2)
  // active users, where h = t in hours + s * tz_spread_hours (mod 24) is
  // the site's local hour. The simulation epoch is local midnight at
  // site 0.
  double population = 400.0;
  int peak_hour = 14;
  double trough = 0.25;
  double tz_spread_hours = 2.0;

  // Flow arrivals: each active user starts flows_per_user_hour flows per
  // hour (Poisson), each a CBR run of a class-dependent rate with a
  // shifted-exponential packet count of the given mean.
  double flows_per_user_hour = 0.5;
  double mean_flow_packets = 40.0;

  // Per-site access-link capacity in bytes per second. Every copy sent
  // from a site (data, duplicate, FEC parity) drains a leaky bucket of
  // this rate; the backlog is charged as queueing delay on top of the
  // network one-way latency.
  double access_bytes_per_s = 64.0 * 1024.0;

  // Destination weighting: uniform over other sites, times the weight of
  // any matching hot pair (concentrates load on instrumented pairs).
  std::vector<HotPair> hot_pairs;

  std::array<ClassSpec, kServiceClassCount> classes;

  // The reference spec used by benches and tests: the class table from
  // the README (VoIP/video/web/bulk) and one 8x hot pair on the
  // fault-instrumented 0 -> 1 pair.
  [[nodiscard]] static WorkloadSpec defaults();

  // Strict DSL parser (see header comment). Returns std::nullopt and
  // fills *error with "line N, col C: msg" on any malformed, non-finite
  // or negative field. Unmentioned fields keep their defaults().
  [[nodiscard]] static std::optional<WorkloadSpec> parse(std::string_view text,
                                                         std::string* error);

  // Semantic validation shared by parse() and hand-built specs: mixes
  // sum to ~1, every rate/size/bound positive and finite. Returns an
  // empty string when valid.
  [[nodiscard]] std::string validate() const;
};

}  // namespace ronpath

#endif  // RONPATH_WORKLOAD_SPEC_H_
