#include "workload/traffic.h"

#include <algorithm>
#include <cmath>

namespace ronpath {
namespace {

// Flow lengths are capped so a single heavy-tailed draw cannot dominate
// a cell's runtime; the cap is far out in the tail for any sane mean.
constexpr std::int64_t kMaxFlowPackets = 100'000;

double hot_weight(const WorkloadSpec& spec, NodeId src, NodeId dst) {
  double w = 1.0;
  for (const HotPair& hp : spec.hot_pairs) {
    if (hp.src == src && hp.dst == dst) w *= hp.weight;
  }
  return w;
}

}  // namespace

double diurnal_factor(const WorkloadSpec& spec, NodeId site, TimePoint t) {
  const double hours =
      t.since_epoch().to_seconds_f() / 3600.0 + static_cast<double>(site) * spec.tz_spread_hours;
  const double phase = 2.0 * 3.14159265358979323846 *
                       (hours - static_cast<double>(spec.peak_hour)) / 24.0;
  return spec.trough + (1.0 - spec.trough) * 0.5 * (1.0 + std::cos(phase));
}

TrafficMatrix::TrafficMatrix(const WorkloadSpec& spec, std::size_t node_count, TimePoint start,
                             TimePoint end, const Rng& root) {
  const std::size_t n = node_count;
  // Destination weights are normalized per source so a hot pair shifts
  // traffic toward its destination without changing the source's total
  // flow rate (each user still starts flows_per_user_hour flows).
  std::vector<double> weight_sum(n, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t d = 0; d < n; ++d) {
      if (d != s) {
        weight_sum[s] += hot_weight(spec, static_cast<NodeId>(s), static_cast<NodeId>(d));
      }
    }
  }

  // Class mix CDF for inverse-transform class draws.
  std::array<double, kServiceClassCount> mix_cdf{};
  double acc = 0.0;
  for (std::size_t c = 0; c < kServiceClassCount; ++c) {
    acc += spec.classes[c].mix;
    mix_cdf[c] = acc;
  }

  struct Keyed {
    Flow flow;
    std::uint64_t seq = 0;  // per-pair sequence, the cross-pair tiebreak
  };
  std::vector<Keyed> keyed;

  for (std::size_t si = 0; si < n; ++si) {
    for (std::size_t di = 0; di < n; ++di) {
      if (di == si) continue;
      const NodeId s = static_cast<NodeId>(si);
      const NodeId d = static_cast<NodeId>(di);
      // Peak pair rate (flows/sec): all of the source's users active,
      // destination at full attractiveness. The diurnal factors of both
      // endpoints thin the process below this envelope.
      const double lambda_max = spec.population * spec.flows_per_user_hour / 3600.0 *
                                hot_weight(spec, s, d) / weight_sum[si];
      if (lambda_max <= 0.0) continue;
      Rng rng = root.fork(static_cast<std::uint64_t>(s) * n + d);
      std::uint64_t seq = 0;
      TimePoint t = start;
      for (;;) {
        t += Duration::from_seconds_f(rng.exponential(1.0 / lambda_max));
        if (t >= end) break;
        const double keep = diurnal_factor(spec, s, t) * diurnal_factor(spec, d, t);
        // Thinning draw happens for every candidate (accepted or not) so
        // the stream layout is independent of the diurnal parameters.
        const bool accept = rng.next_double() < keep;
        const double class_u = rng.next_double();
        const double len_extra = rng.exponential(std::max(0.0, spec.mean_flow_packets - 1.0));
        if (!accept) continue;

        Flow f;
        f.src = s;
        f.dst = d;
        f.start = t;
        f.cls = ServiceClass::kBulk;
        for (std::size_t c = 0; c < kServiceClassCount; ++c) {
          if (class_u < mix_cdf[c]) {
            f.cls = static_cast<ServiceClass>(c);
            break;
          }
        }
        const ClassSpec& cs = spec.classes[static_cast<std::size_t>(f.cls)];
        f.packets = std::min<std::int64_t>(1 + static_cast<std::int64_t>(len_extra),
                                           kMaxFlowPackets);
        f.interval = Duration::from_seconds_f(1.0 / cs.rate_pps);
        keyed.push_back({f, seq++});
      }
    }
  }

  std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    if (a.flow.start != b.flow.start) return a.flow.start < b.flow.start;
    if (a.flow.src != b.flow.src) return a.flow.src < b.flow.src;
    if (a.flow.dst != b.flow.dst) return a.flow.dst < b.flow.dst;
    return a.seq < b.seq;
  });
  flows_.reserve(keyed.size());
  for (const Keyed& k : keyed) {
    flows_.push_back(k.flow);
    total_packets_ += k.flow.packets;
  }
}

}  // namespace ronpath
