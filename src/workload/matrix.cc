#include "workload/matrix.h"

#include <sstream>

#include "util/table.h"
#include "util/thread_pool.h"

namespace ronpath {

WorkloadCell run_workload_cell(const Scenario& scenario, WorkloadPolicy policy,
                               const WorkloadConfig& cfg, std::uint64_t seed) {
  WorkloadWorld world(scenario, policy, cfg, seed);
  world.run_to_end();

  WorkloadCell cell;
  cell.scenario = std::string(scenario.name);
  cell.policy = policy;
  for (std::size_t c = 0; c < kServiceClassCount; ++c) {
    const ClassMetrics& m = world.metrics()[c];
    ClassCell& out = cell.classes[c];
    out.sent = m.sent();
    out.delivered = m.delivered();
    out.loss_pct = m.loss_pct();
    out.p50_ms = m.p50().to_millis_f();
    out.p99_ms = m.p99().to_millis_f();
    out.p999_ms = m.p999().to_millis_f();
    out.slo_pct = m.slo_attainment_pct();
    out.mos = m.mos(cfg.spec.classes[c].slo_latency);
    out.bursts = m.bursts();
  }
  cell.overhead = world.overhead_factor();
  cell.transitions = world.transitions();
  cell.fec_blocks = world.fec_blocks();
  cell.fec_recovered = world.fec_recovered();
  return cell;
}

WorkloadMatrixResult run_workload_matrix(const WorkloadConfig& cfg,
                                         std::span<const Scenario> scenarios,
                                         std::uint64_t seed, int n_jobs) {
  const std::span<const WorkloadPolicy> policies = all_workload_policies();
  WorkloadMatrixResult result;
  result.cfg = cfg;
  result.seed = seed;
  result.cells.resize(scenarios.size() * policies.size());

  ThreadPool::for_each_index(
      result.cells.size(), static_cast<std::size_t>(n_jobs), [&](std::size_t task) {
        const Scenario& scenario = scenarios[task / policies.size()];
        const WorkloadPolicy policy = policies[task % policies.size()];
        result.cells[task] = run_workload_cell(scenario, policy, cfg, seed);
      });
  return result;
}

std::string format_workload_matrix(const WorkloadMatrixResult& result,
                                   std::span<const Scenario> scenarios) {
  const std::span<const WorkloadPolicy> policies = all_workload_policies();
  std::ostringstream os;
  const WorkloadConfig& cfg = result.cfg;
  os << "== Workload matrix: policy x scenario, per-class SLOs ==\n";
  os << "nodes " << cfg.cell.node_count << " | seed " << result.seed << " | warmup "
     << cfg.cell.warmup.to_string() << " | measured " << cfg.cell.measured.to_string()
     << " | population " << TextTable::num(cfg.spec.population, 0) << " | access "
     << TextTable::num(cfg.spec.access_bytes_per_s / 1024.0, 0) << "KB/s\n";
  os << "classes:";
  for (std::size_t c = 0; c < kServiceClassCount; ++c) {
    const ClassSpec& cs = cfg.spec.classes[c];
    os << " " << to_string(static_cast<ServiceClass>(c)) << "(mix "
       << TextTable::num(cs.mix, 2) << ", " << TextTable::num(cs.rate_pps, 0) << "pps x "
       << TextTable::num(cs.packet_bytes, 0) << "B, slo " << cs.slo_latency.to_string() << "/"
       << TextTable::num(cs.slo_loss_pct, 1) << "%)";
  }
  os << "\n";

  std::size_t cell_index = 0;
  for (const Scenario& scenario : scenarios) {
    os << "\n-- " << scenario.name << (scenario.routable ? " (routable)" : " (unroutable)")
       << ": " << scenario.summary << "\n";
    TextTable t({"policy", "class", "sent", "loss", "p50", "p99", "p999", "slo", "mos",
                 "overhead", "switches"});
    for (std::size_t p = 0; p < policies.size(); ++p, ++cell_index) {
      const WorkloadCell& cell = result.cells[cell_index];
      for (std::size_t c = 0; c < kServiceClassCount; ++c) {
        const ClassCell& cc = cell.classes[c];
        t.add_row({c == 0 ? std::string(to_string(cell.policy)) : "",
                   std::string(to_string(static_cast<ServiceClass>(c))),
                   TextTable::num(static_cast<std::int64_t>(cc.sent)),
                   TextTable::num(cc.loss_pct) + "%", TextTable::num(cc.p50_ms) + "ms",
                   TextTable::num(cc.p99_ms) + "ms", TextTable::num(cc.p999_ms) + "ms",
                   TextTable::num(cc.slo_pct) + "%", TextTable::num(cc.mos),
                   c == 0 ? TextTable::num(cell.overhead) : "",
                   c == 0 ? TextTable::num(cell.transitions) : ""});
      }
    }
    os << t.to_string();
  }

  // The acceptance gate's view: per (scenario, class) SLO attainment
  // across policies, flagging where the adaptive loop strictly beats
  // both static policies.
  os << "\n-- SLO attainment (scenario x class, per policy) --\n";
  TextTable t({"scenario", "class", "probe-only", "static-2x", "adaptive", "winner"});
  cell_index = 0;
  for (const Scenario& scenario : scenarios) {
    const WorkloadCell& probe = result.cells[cell_index];
    const WorkloadCell& mesh = result.cells[cell_index + 1];
    const WorkloadCell& adaptive = result.cells[cell_index + 2];
    cell_index += policies.size();
    for (std::size_t c = 0; c < kServiceClassCount; ++c) {
      const double po = probe.classes[c].slo_pct;
      const double st = mesh.classes[c].slo_pct;
      const double ad = adaptive.classes[c].slo_pct;
      std::string winner = "-";
      if (ad > po && ad > st) {
        winner = "adaptive";
      } else if (st > po && st > ad) {
        winner = "static-2x";
      } else if (po > st && po > ad) {
        winner = "probe-only";
      }
      t.add_row({c == 0 ? std::string(scenario.name) : "",
                 std::string(to_string(static_cast<ServiceClass>(c))),
                 TextTable::num(po) + "%", TextTable::num(st) + "%", TextTable::num(ad) + "%",
                 winner});
    }
  }
  os << t.to_string();
  return os.str();
}

}  // namespace ronpath
