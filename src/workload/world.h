// WorkloadWorld: one (scenario, policy) workload cell as a resumable
// simulation, the workload-layer analogue of snapshot/world.h's
// SimWorld.
//
// The underlay/overlay/fault machinery is the shared core/cell_env.h
// sequence; on top of it the world replays a pregenerated TrafficMatrix
// packet schedule (its own "workload" RNG fork, so the flow set is
// identical across policies and shard counts) and scores every packet
// into per-class ClassMetrics. Three redundancy policies are compared:
//
//   kProbeOnly  every packet rides the loss-optimized best path (the
//               paper's pure reactive scheme);
//   kStatic2    every packet is duplicated on disjoint paths (the 2x
//               mesh scheme Figure 6 budgets for);
//   kAdaptive   the closed loop of workload/adaptive.h picks single /
//               FEC / duplicate per (pair, class) from measured loss.
//
// Access-link model: each source site owns a leaky bucket of
// spec.access_bytes_per_s; every copy (data, duplicate, FEC parity)
// drains it and the standing backlog is charged as queueing delay on
// top of the network one-way latency. That is the Figure 6 capacity
// limit enforced in the data plane: blind duplication of fat flows
// queues latency-sensitive classes past their SLO, which is exactly the
// effect the adaptive policy exists to avoid.
//
// FEC model (accounting-level, like every packet in this simulator):
// at level kFec a flow's data packets accumulate into blocks of up to
// fec_k shards on the primary path; at each block boundary m parity
// shards ride the disjoint detour (HybridSender::alternate_path). A
// lost data packet is recovered iff delivered shards >= block size, at
// the latency of the last delivered shard in the block.
//
// Determinism: a finished world is a pure function of (scenario,
// policy, config, seed) — byte-identical report at any --jobs/--shards,
// and snapshot kill/restore reproduces it exactly (same re-arm
// discipline as SimWorld; clock first, then owners).

#ifndef RONPATH_WORKLOAD_WORLD_H_
#define RONPATH_WORKLOAD_WORLD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/cell_env.h"
#include "measure/perceived.h"
#include "workload/adaptive.h"
#include "workload/spec.h"
#include "workload/traffic.h"

namespace ronpath {

enum class WorkloadPolicy : std::uint8_t { kProbeOnly = 0, kStatic2 = 1, kAdaptive = 2 };

[[nodiscard]] std::string_view to_string(WorkloadPolicy policy);
[[nodiscard]] std::span<const WorkloadPolicy> all_workload_policies();

struct WorkloadConfig {
  // Underlay / overlay / fault knobs (node_count, warmup, measured,
  // shards, scale tier). send_interval and stable_streak are unused by
  // the workload layer.
  FaultMatrixConfig cell;
  WorkloadSpec spec;
  AdaptiveConfig adaptive;
};

class WorkloadWorld {
 public:
  // Throws std::runtime_error when the scenario DSL does not parse and
  // std::invalid_argument when the spec fails validation.
  WorkloadWorld(const Scenario& scenario, WorkloadPolicy policy, const WorkloadConfig& cfg,
                std::uint64_t seed);

  [[nodiscard]] std::size_t total_packets() const { return schedule_.size(); }
  [[nodiscard]] std::size_t next_packet() const { return next_packet_; }
  [[nodiscard]] bool finished() const { return drained_; }

  // Runs forward until `packet_index` scheduled packets have been sent
  // (clamped). The warmup runs on first call.
  void advance_to(std::size_t packet_index);
  void run_to_end();

  [[nodiscard]] const PerClassMetrics& metrics() const { return metrics_; }
  // Copies sent per application packet (data + duplicates + parity).
  [[nodiscard]] double overhead_factor() const;
  // Total controller level transitions (flap-amplification bound).
  [[nodiscard]] std::int64_t transitions() const;
  [[nodiscard]] std::int64_t fec_blocks() const { return fec_blocks_; }
  [[nodiscard]] std::int64_t fec_recovered() const { return fec_recovered_; }

  // Identity sealed into snapshot files (scenario, policy, config, seed,
  // full workload spec).
  [[nodiscard]] std::uint64_t fingerprint() const;

  void save_state(snap::Encoder& e) const;
  void restore_state(snap::Decoder& d);

  // Deterministic text report: progress, per-class table, overhead,
  // transitions, metric hash. Byte-identical between an uninterrupted
  // run and any kill/restore schedule.
  [[nodiscard]] std::string report() const;

  void check_invariants(std::vector<std::string>& out) const;

  [[nodiscard]] Scheduler& scheduler() { return env_.sched; }
  [[nodiscard]] const WorkloadConfig& config() const { return cfg_; }
  [[nodiscard]] const std::vector<Flow>& flows() const { return traffic_.flows(); }

 private:
  struct PacketEvent {
    TimePoint t;
    std::uint32_t flow = 0;
    std::int64_t index = 0;  // packet index within the flow
  };
  // A data shard waiting for its FEC block to resolve.
  struct PendingShard {
    TimePoint sent;
    TimePoint arrival;       // valid when delivered
    bool delivered = false;
  };
  struct FlowProgress {
    std::uint64_t burst_run = 0;       // current run of consecutive losses
    std::vector<PendingShard> block;   // open FEC block (kFec only)
    bool burst_flushed = false;        // end-of-flow flush happened
  };
  struct AccessBucket {
    double backlog_bytes = 0.0;
    TimePoint last;
  };

  [[nodiscard]] TimePoint measure_start() const { return TimePoint::epoch() + cfg_.cell.warmup; }
  [[nodiscard]] TimePoint end_time() const { return measure_start() + cfg_.cell.measured; }
  [[nodiscard]] std::size_t pair_index(NodeId src, NodeId dst) const {
    return static_cast<std::size_t>(src) * nodes_ + dst;
  }
  // Charges `bytes` to src's access bucket at `t` and returns the
  // queueing delay this copy waits behind.
  Duration charge_access(NodeId src, double bytes, TimePoint t);
  // Scores one resolved data packet (metrics + burst run).
  void score_packet(const Flow& flow, FlowProgress& fp, bool delivered, Duration latency);
  // Sends parity and resolves the open block of `flow` at time `t`.
  void flush_block(std::uint32_t flow_idx, TimePoint t);
  // End-of-flow bookkeeping (close the burst run).
  void finish_flow(std::uint32_t flow_idx, TimePoint t);
  void send_one(const PacketEvent& ev);

  // Configuration (immutable after construction).
  std::string scenario_name_;
  std::string dsl_;
  WorkloadPolicy policy_;
  WorkloadConfig cfg_;
  std::uint64_t seed_;
  std::size_t nodes_ = 0;

  CellEnv env_;
  TrafficMatrix traffic_;
  std::vector<PacketEvent> schedule_;

  // Mutable progress state (all snapshotted).
  std::vector<FlowProgress> progress_;
  std::vector<AccessBucket> buckets_;        // per source site
  std::vector<double> loss_est_;             // per ordered pair EWMA
  std::vector<AdaptiveController> ctrl_;     // per pair x class
  PerClassMetrics metrics_;
  std::size_t next_packet_ = 0;
  std::int64_t app_packets_ = 0;
  std::int64_t copies_ = 0;
  std::int64_t fec_blocks_ = 0;
  std::int64_t fec_recovered_ = 0;
  bool warmed_ = false;
  bool drained_ = false;
};

}  // namespace ronpath

#endif  // RONPATH_WORKLOAD_WORLD_H_
