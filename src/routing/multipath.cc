#include "routing/multipath.h"

#include <cassert>

namespace ronpath {

bool ProbeOutcome::any_delivered() const {
  for (const auto& c : copies) {
    if (c.delivered()) return true;
  }
  return false;
}

TimePoint ProbeOutcome::first_arrival() const {
  TimePoint best = TimePoint::max();
  for (const auto& c : copies) {
    if (c.delivered() && c.arrival() < best) best = c.arrival();
  }
  return best;
}

MultipathSender::MultipathSender(OverlayNetwork& overlay, Rng rng)
    : overlay_(overlay), rng_(rng.fork("multipath")) {}

ProbeOutcome MultipathSender::send(PairScheme scheme, NodeId src, NodeId dst, TimePoint now) {
  const SchemeSpec& spec = scheme_spec(scheme);
  ProbeOutcome out;
  out.scheme = scheme;
  out.probe_id = rng_.next_u64();
  out.src = src;
  out.dst = dst;

  CopyOutcome first;
  first.tag = spec.first;
  first.path = overlay_.route(src, dst, spec.first);
  first.sent = now;
  first.result = overlay_.send(first.path, now);
  out.copies.push_back(first);

  if (spec.two_packets()) {
    CopyOutcome second;
    second.tag = *spec.second;
    second.path = spec.second_same_path ? first.path : overlay_.route(src, dst, *spec.second);
    second.sent = now + spec.gap;
    second.result = overlay_.send(second.path, second.sent);
    out.copies.push_back(second);
  }
  return out;
}

}  // namespace ronpath
