// End-to-end ARQ over the overlay (the paper's Section 2.1 baseline).
//
// "The traditional way to mask losses in packetized data transfer is to
//  use packet diversity through retransmissions ... not all applications
//  desire its cost in latency."
//
// ArqChannel implements the classic end-to-end recovery the paper
// contrasts against: positive acknowledgment with timeout retransmission,
// Jacobson/Karels RTO estimation (SRTT/RTTVAR), exponential backoff, and
// an optional policy of retransmitting over the loss-optimized alternate
// path instead of the original (RON-flavored ARQ). Delivery latency -
// including the RTO stalls the paper's motivation is about - is recorded
// per packet so benches can compare recovery-latency distributions
// against mesh routing and FEC.

#ifndef RONPATH_ROUTING_ARQ_H_
#define RONPATH_ROUTING_ARQ_H_

#include <cstdint>

#include "event/scheduler.h"
#include "overlay/overlay.h"
#include "util/rng.h"
#include "util/stats.h"

namespace ronpath {

struct ArqConfig {
  // Jacobson/Karels RTO parameters (RFC 6298 shape).
  double srtt_alpha = 1.0 / 8.0;
  double rttvar_beta = 1.0 / 4.0;
  double rttvar_k = 4.0;
  Duration min_rto = Duration::millis(200);
  Duration max_rto = Duration::seconds(30);
  Duration initial_rto = Duration::seconds(1);
  int max_retransmits = 6;
  // Retransmit over the loss-optimized overlay path instead of the
  // original path (the overlay-assisted variant).
  bool retransmit_on_alternate = false;
};

class ArqChannel {
 public:
  ArqChannel(OverlayNetwork& overlay, Scheduler& sched, NodeId src, NodeId dst, ArqConfig cfg,
             Rng rng);

  // Sends one application packet now; the channel retransmits until the
  // ack returns or max_retransmits is exhausted.
  void send();

  struct Stats {
    std::int64_t packets = 0;
    std::int64_t delivered = 0;       // data reached dst (ack may still die)
    std::int64_t acked = 0;           // fully confirmed
    std::int64_t given_up = 0;        // exceeded max_retransmits
    std::int64_t transmissions = 0;   // data copies on the wire
    RunningStat delivery_latency_ms;  // send -> first arrival at dst
    P2Quantile delivery_p99_ms{0.99};
    RunningStat ack_latency_ms;       // send -> ack received
    [[nodiscard]] double delivery_rate() const {
      return packets > 0 ? static_cast<double>(delivered) / static_cast<double>(packets) : 0.0;
    }
    [[nodiscard]] double mean_transmissions() const {
      return packets > 0 ? static_cast<double>(transmissions) / static_cast<double>(packets)
                         : 0.0;
    }
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] Duration current_rto() const { return rto_; }
  // True when no packets are awaiting acks.
  [[nodiscard]] bool idle() const { return in_flight_ == 0; }

 private:
  struct Attempt {
    std::int64_t id;
    TimePoint first_sent;
    int tries;
    Duration rto;
    // Delivery (data reaching dst) already counted for this packet; a
    // lost ack otherwise double-counts when the retransmission lands.
    bool delivery_counted;
  };

  void transmit(Attempt attempt);
  void on_ack(const Attempt& attempt, TimePoint data_arrival, TimePoint ack_arrival);
  void on_timeout(Attempt attempt);
  void update_rto(Duration rtt);

  OverlayNetwork& overlay_;
  Scheduler& sched_;
  NodeId src_;
  NodeId dst_;
  ArqConfig cfg_;
  Rng rng_;
  Stats stats_;
  std::int64_t next_id_ = 0;
  int in_flight_ = 0;
  // RTO state.
  bool have_rtt_ = false;
  double srtt_ms_ = 0.0;
  double rttvar_ms_ = 0.0;
  Duration rto_;
};

}  // namespace ronpath

#endif  // RONPATH_ROUTING_ARQ_H_
