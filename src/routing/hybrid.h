// Hybrid reactive + redundant routing (the paper's Sections 5.3 and 6).
//
// The paper frames application design as allocating a bandwidth budget
// between probing and duplication, and closes by asking "what
// combinations of these methods prove to be sweet spots". This module
// implements that exploration as a library policy:
//
//   kBestPath       - always send one copy on the loss-optimized path
//                     (pure reactive; overhead 1x + probing).
//   kAlwaysDuplicate- always send two copies: loss-optimized + disjoint
//                     alternate (pure mesh on selected paths; 2x).
//   kAdaptive       - duplicate only when the routing state says it is
//                     worth it: the best path's loss estimate exceeds
//                     `duplicate_threshold`, or the destination's links
//                     look unstable (recent down flags). Overhead floats
//                     between 1x and 2x with network conditions, which is
//                     exactly the knob Figure 6's capacity limits are
//                     about.
//
// The second copy avoids the first copy's intermediate (and the direct
// path if the first copy is indirect), maximizing component disjointness
// under the one-hop constraint.

#ifndef RONPATH_ROUTING_HYBRID_H_
#define RONPATH_ROUTING_HYBRID_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "overlay/overlay.h"
#include "routing/multipath.h"
#include "util/rng.h"

namespace ronpath {

class PathEngine;

namespace snap {
class Encoder;
class Decoder;
}  // namespace snap

enum class HybridMode : std::uint8_t {
  kBestPath,
  kAlwaysDuplicate,
  kAdaptive,
};

[[nodiscard]] std::string_view to_string(HybridMode mode);

struct HybridConfig {
  HybridMode mode = HybridMode::kAdaptive;
  // Adaptive: duplicate when the chosen path's composed loss estimate is
  // at or above this.
  double duplicate_threshold = 0.01;
  // Adaptive: also duplicate when any link of the chosen path is flagged
  // down (an outage is in progress; the estimate lags).
  bool duplicate_on_down = true;
};

struct HybridOutcome {
  ProbeOutcome probe;       // copies actually sent (1 or 2)
  bool duplicated = false;  // second copy was sent

  [[nodiscard]] bool delivered() const { return probe.any_delivered(); }
};

class HybridSender {
 public:
  HybridSender(OverlayNetwork& overlay, HybridConfig cfg, Rng rng);
  ~HybridSender();  // out of line: PathEngine is incomplete here

  // Sends one application packet from src to dst at `now` under the
  // configured policy.
  HybridOutcome send(NodeId src, NodeId dst, TimePoint now);

  // Overhead accounting: copies sent per application packet so far.
  [[nodiscard]] double overhead_factor() const;
  [[nodiscard]] std::int64_t packets() const { return packets_; }
  [[nodiscard]] std::int64_t copies() const { return copies_; }
  [[nodiscard]] std::int64_t duplicated() const { return duplicated_; }

  // Snapshot support: RNG stream and overhead counters (the alternate
  // path engine holds only per-query scratch).
  void save_state(snap::Encoder& e) const;
  void restore_state(snap::Decoder& d);

  // Invariant auditor: counter consistency (copies bounded by 1x..2x of
  // packets, duplications never exceed packets).
  void check_invariants(std::vector<std::string>& out) const;

  // Chooses the alternate path for the second copy: best disjoint via.
  // Public so the workload layer's FEC mode can route parity shards on
  // the same detour a duplicate would take (shared disjointness logic).
  [[nodiscard]] PathSpec alternate_path(NodeId src, NodeId dst, const PathSpec& primary);

 private:

  OverlayNetwork& overlay_;
  HybridConfig cfg_;
  Rng rng_;
  // Alternate-path selection runs on the shared path engine with a
  // penalty-free, trust-forever view (raw composed loss, no
  // indirect-path handicap: the second copy exists for disjointness,
  // not because it looks better than the primary). Declared before the
  // engine, which holds a reference to it.
  RouterConfig alt_cfg_;
  std::unique_ptr<PathEngine> alt_engine_;
  std::vector<bool> alt_excluded_;
  std::int64_t packets_ = 0;
  std::int64_t copies_ = 0;
  std::int64_t duplicated_ = 0;
};

}  // namespace ronpath

#endif  // RONPATH_ROUTING_HYBRID_H_
