#include "routing/schemes.h"

#include <array>
#include <cassert>

namespace ronpath {
namespace {

constexpr std::size_t kSchemeCount = 14;

constexpr std::array<SchemeSpec, kSchemeCount> kSpecs = [] {
  std::array<SchemeSpec, kSchemeCount> s{};

  auto set = [&s](PairScheme scheme, std::string_view name, RouteTag first,
                  std::optional<RouteTag> second = std::nullopt,
                  Duration gap = Duration::zero(), bool same_path = false) {
    auto& e = s[static_cast<std::size_t>(scheme)];
    e = SchemeSpec{scheme, name, first, second, gap, same_path};
  };

  set(PairScheme::kDirect, "direct", RouteTag::kDirect);
  set(PairScheme::kLat, "lat", RouteTag::kLat);
  set(PairScheme::kLoss, "loss", RouteTag::kLoss);
  set(PairScheme::kDirectRand, "direct rand", RouteTag::kDirect, RouteTag::kRand);
  // Table 5 footnote: lat* is inferred from the first packet of lat loss,
  // so the first copy is routed by the latency tactic.
  set(PairScheme::kLatLoss, "lat loss", RouteTag::kLat, RouteTag::kLoss);
  set(PairScheme::kDirectDirect, "direct direct", RouteTag::kDirect, RouteTag::kDirect,
      Duration::zero(), true);
  set(PairScheme::kDd10ms, "dd 10 ms", RouteTag::kDirect, RouteTag::kDirect,
      Duration::millis(10), true);
  set(PairScheme::kDd20ms, "dd 20 ms", RouteTag::kDirect, RouteTag::kDirect,
      Duration::millis(20), true);
  set(PairScheme::kRand, "rand", RouteTag::kRand);
  set(PairScheme::kRandRand, "rand rand", RouteTag::kRand, RouteTag::kRand);
  set(PairScheme::kDirectLat, "direct lat", RouteTag::kDirect, RouteTag::kLat);
  set(PairScheme::kDirectLoss, "direct loss", RouteTag::kDirect, RouteTag::kLoss);
  set(PairScheme::kRandLat, "rand lat", RouteTag::kRand, RouteTag::kLat);
  set(PairScheme::kRandLoss, "rand loss", RouteTag::kRand, RouteTag::kLoss);
  return s;
}();

constexpr std::array<PairScheme, 6> kRon2003Probes = {
    PairScheme::kLoss,         PairScheme::kDirectRand, PairScheme::kLatLoss,
    PairScheme::kDirectDirect, PairScheme::kDd10ms,     PairScheme::kDd20ms,
};

constexpr std::array<PairScheme, 12> kRonwideProbes = {
    PairScheme::kDirect,     PairScheme::kRand,       PairScheme::kLat,
    PairScheme::kLoss,       PairScheme::kDirectDirect, PairScheme::kRandRand,
    PairScheme::kDirectRand, PairScheme::kDirectLat,  PairScheme::kDirectLoss,
    PairScheme::kRandLat,    PairScheme::kRandLoss,   PairScheme::kLatLoss,
};

constexpr std::array<PairScheme, 3> kRonnarrowProbes = {
    PairScheme::kLoss,
    PairScheme::kDirectRand,
    PairScheme::kLatLoss,
};

// Table 5 (2003) row order.
constexpr std::array<PairScheme, 8> kRon2003Rows = {
    PairScheme::kDirect,     PairScheme::kLat,          PairScheme::kLoss,
    PairScheme::kDirectRand, PairScheme::kLatLoss,      PairScheme::kDirectDirect,
    PairScheme::kDd10ms,     PairScheme::kDd20ms,
};

// Table 7 row order.
constexpr std::array<PairScheme, 12> kRonwideRows = kRonwideProbes;

}  // namespace

const SchemeSpec& scheme_spec(PairScheme scheme) {
  const auto idx = static_cast<std::size_t>(scheme);
  assert(idx < kSchemeCount);
  return kSpecs[idx];
}

std::span<const SchemeSpec> all_schemes() { return kSpecs; }

std::span<const PairScheme> ron2003_probe_set() { return kRon2003Probes; }
std::span<const PairScheme> ronwide_probe_set() { return kRonwideProbes; }
std::span<const PairScheme> ronnarrow_probe_set() { return kRonnarrowProbes; }
std::span<const PairScheme> ron2003_report_rows() { return kRon2003Rows; }
std::span<const PairScheme> ronwide_report_rows() { return kRonwideRows; }

std::optional<PairScheme> inference_source(PairScheme row) {
  // direct* from the first copy of direct rand (also carried by the dd
  // family; direct rand is the paper's stated source), lat* from the
  // first copy of lat loss.
  switch (row) {
    case PairScheme::kDirect: return PairScheme::kDirectRand;
    case PairScheme::kLat: return PairScheme::kLatLoss;
    default: return std::nullopt;
  }
}

}  // namespace ronpath
