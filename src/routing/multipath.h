// Multipath packet emission: resolves a scheme's copies to overlay paths
// and transmits them, reporting per-copy outcomes.
//
// This is both the data plane used by the examples (2-redundant mesh
// routing of Section 3.2) and the probe emitter used by the measurement
// driver - the paper's probes *are* packets routed by these schemes.

#ifndef RONPATH_ROUTING_MULTIPATH_H_
#define RONPATH_ROUTING_MULTIPATH_H_

#include <vector>

#include "overlay/overlay.h"
#include "routing/schemes.h"
#include "util/rng.h"
#include "wire/packet.h"

namespace ronpath {

struct CopyOutcome {
  RouteTag tag = RouteTag::kDirect;
  PathSpec path;
  TimePoint sent;
  OverlaySendResult result;

  [[nodiscard]] bool delivered() const { return result.delivered(); }
  // Arrival time; only meaningful when delivered.
  [[nodiscard]] TimePoint arrival() const { return sent + result.net.latency; }
  [[nodiscard]] Duration one_way() const { return result.net.latency; }
};

struct ProbeOutcome {
  PairScheme scheme = PairScheme::kDirect;
  std::uint64_t probe_id = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  // One entry per transmitted copy (1 or 2).
  std::vector<CopyOutcome> copies;

  // Probe delivered iff any copy reached a live destination.
  [[nodiscard]] bool any_delivered() const;
  // Earliest arrival among delivered copies.
  [[nodiscard]] TimePoint first_arrival() const;
};

class MultipathSender {
 public:
  MultipathSender(OverlayNetwork& overlay, Rng rng);

  // Sends one probe/packet group under `scheme` from src to dst at `now`.
  // Copy paths are resolved through the overlay's current routing state.
  ProbeOutcome send(PairScheme scheme, NodeId src, NodeId dst, TimePoint now);

 private:
  OverlayNetwork& overlay_;
  Rng rng_;
};

}  // namespace ronpath

#endif  // RONPATH_ROUTING_MULTIPATH_H_
