// Spread FEC over the overlay (Section 5.2, operationalized).
//
// The paper argues that same-path FEC must spread its protection
// information over hundreds of milliseconds to escape burst correlation
// ("the FEC information must be spread out by nearly half a second"),
// and that path diversity is the alternative. SpreadFecChannel
// implements both axes as a sending strategy over the overlay:
//
//   parity_spread - how long after its block's last data packet each
//                   parity shard is transmitted (temporal
//                   de-correlation; costs exactly that much recovery
//                   latency, the trade-off of Section 5.2),
//   striping      - which overlay path each shard takes:
//       kSinglePath   : everything on the direct path (the strawman),
//       kAlternating  : even shards direct, odd shards on the current
//                       loss-optimized alternate (path diversity),
//       kParityDetour : data direct (no added latency in the no-loss
//                       case), parity through a random intermediate.
//
// Data shards are transmitted immediately at the stream's own pace
// ("standard codes": originals first). The channel couples a FecEncoder
// on the source with a FecDecoder on the destination and runs parity
// transmissions through the scheduler so the spread interacts faithfully
// with the underlay's burst timelines.

#ifndef RONPATH_ROUTING_SPREAD_FEC_H_
#define RONPATH_ROUTING_SPREAD_FEC_H_

#include <cstdint>
#include <string_view>

#include "event/scheduler.h"
#include "fec/packet_fec.h"
#include "overlay/overlay.h"
#include "util/rng.h"

namespace ronpath {

enum class FecStriping : std::uint8_t {
  kSinglePath,
  kAlternating,
  kParityDetour,
};

[[nodiscard]] std::string_view to_string(FecStriping striping);

struct SpreadFecConfig {
  std::size_t data_shards = 5;    // k
  std::size_t parity_shards = 1;  // m
  // Delay of parity shard j past its block's last data transmission:
  // parity_spread * (j + 1).
  Duration parity_spread = Duration::zero();
  FecStriping striping = FecStriping::kSinglePath;
};

class SpreadFecChannel {
 public:
  SpreadFecChannel(OverlayNetwork& overlay, Scheduler& sched, NodeId src, NodeId dst,
                   SpreadFecConfig cfg, Rng rng);

  // Transmits one application payload now (plus, on block completion,
  // its block's parity shards after the configured spread).
  void send(std::vector<std::uint8_t> payload);

  // Pads and emits the final partial block.
  void flush();

  // Statistics (valid once the scheduler has run past the last shard).
  struct Stats {
    std::int64_t payloads = 0;       // application payloads submitted
    std::int64_t shards_sent = 0;
    std::int64_t shards_lost = 0;    // lost on the wire
    std::int64_t delivered = 0;      // payloads that reached the app
    std::int64_t reconstructed = 0;  // of those, recovered via parity
    [[nodiscard]] double delivery_rate() const {
      return payloads > 0 ? static_cast<double>(delivered) / static_cast<double>(payloads)
                          : 0.0;
    }
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  // Time the last scheduled shard will have been sent.
  [[nodiscard]] TimePoint last_tx_time() const { return last_tx_; }

 private:
  void transmit_shard(const FecShard& shard);
  void dispatch(FecShard shard);
  [[nodiscard]] PathSpec path_for(const FecShard& shard);

  OverlayNetwork& overlay_;
  Scheduler& sched_;
  NodeId src_;
  NodeId dst_;
  SpreadFecConfig cfg_;
  Rng rng_;
  FecEncoder encoder_;
  FecDecoder decoder_;
  TimePoint last_tx_;
  Stats stats_;
};

}  // namespace ronpath

#endif  // RONPATH_ROUTING_SPREAD_FEC_H_
