#include "routing/arq.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ronpath {

ArqChannel::ArqChannel(OverlayNetwork& overlay, Scheduler& sched, NodeId src, NodeId dst,
                       ArqConfig cfg, Rng rng)
    : overlay_(overlay),
      sched_(sched),
      src_(src),
      dst_(dst),
      cfg_(cfg),
      rng_(rng.fork("arq")),
      rto_(cfg.initial_rto) {
  assert(src != dst);
}

void ArqChannel::update_rto(Duration rtt) {
  // Jacobson/Karels as specified by RFC 6298.
  const double r = rtt.to_millis_f();
  if (!have_rtt_) {
    srtt_ms_ = r;
    rttvar_ms_ = r / 2.0;
    have_rtt_ = true;
  } else {
    rttvar_ms_ = (1.0 - cfg_.rttvar_beta) * rttvar_ms_ +
                 cfg_.rttvar_beta * std::abs(srtt_ms_ - r);
    srtt_ms_ = (1.0 - cfg_.srtt_alpha) * srtt_ms_ + cfg_.srtt_alpha * r;
  }
  const Duration computed =
      Duration::from_millis_f(srtt_ms_ + cfg_.rttvar_k * rttvar_ms_);
  rto_ = std::clamp(computed, cfg_.min_rto, cfg_.max_rto);
}

void ArqChannel::send() {
  ++stats_.packets;
  ++in_flight_;
  transmit(Attempt{next_id_++, sched_.now(), 0, rto_, false});
}

void ArqChannel::transmit(Attempt attempt) {
  ++stats_.transmissions;
  ++attempt.tries;

  // First try uses the direct path; retransmissions optionally detour.
  PathSpec path{src_, dst_, kDirectVia};
  if (attempt.tries > 1 && cfg_.retransmit_on_alternate) {
    path = overlay_.route(src_, dst_, RouteTag::kLoss);
  }

  const TimePoint now = sched_.now();
  const OverlaySendResult data = overlay_.send(path, now);
  bool acked = false;
  TimePoint data_arrival;
  TimePoint ack_arrival;
  if (data.delivered()) {
    data_arrival = now + data.net.latency;
    // Ack returns on the reverse of the same path.
    const PathSpec reverse{path.dst, path.src, path.via};
    const OverlaySendResult ack = overlay_.send(reverse, data_arrival);
    if (ack.delivered()) {
      acked = true;
      ack_arrival = data_arrival + ack.net.latency;
    }
  }

  if (acked) {
    // Cancel the pending timer by resolving now: schedule the ack
    // processing at its arrival time.
    const Attempt snapshot = attempt;
    sched_.schedule_at(ack_arrival, [this, snapshot, data_arrival, ack_arrival] {
      on_ack(snapshot, data_arrival, ack_arrival);
    });
    return;
  }

  if (data.delivered() && !attempt.delivery_counted) {
    // Data got there but the ack died: the receiver has it; the sender
    // will still retransmit until an ack survives.
    attempt.delivery_counted = true;
    ++stats_.delivered;
    const double ms = (data_arrival - attempt.first_sent).to_millis_f();
    stats_.delivery_latency_ms.add(ms);
    stats_.delivery_p99_ms.add(ms);
  }

  // Arm the retransmission timer.
  sched_.schedule_at(now + attempt.rto, [this, attempt] { on_timeout(attempt); });
}

void ArqChannel::on_ack(const Attempt& attempt, TimePoint data_arrival, TimePoint ack_arrival) {
  ++stats_.acked;
  --in_flight_;
  if (!attempt.delivery_counted) {
    ++stats_.delivered;
    const double ms = (data_arrival - attempt.first_sent).to_millis_f();
    stats_.delivery_latency_ms.add(ms);
    stats_.delivery_p99_ms.add(ms);
  }
  stats_.ack_latency_ms.add((ack_arrival - attempt.first_sent).to_millis_f());
  // Karn's algorithm: only un-retransmitted samples train the estimator.
  if (attempt.tries == 1) {
    update_rto(ack_arrival - attempt.first_sent);
  }
}

void ArqChannel::on_timeout(Attempt attempt) {
  if (attempt.tries > cfg_.max_retransmits) {
    ++stats_.given_up;
    --in_flight_;
    return;
  }
  // Exponential backoff.
  attempt.rto = std::min(attempt.rto * 2, cfg_.max_rto);
  rto_ = std::clamp(attempt.rto, cfg_.min_rto, cfg_.max_rto);
  transmit(attempt);
}

}  // namespace ronpath
