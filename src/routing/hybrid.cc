#include "routing/hybrid.h"

#include <cassert>

#include "overlay/path_engine.h"
#include "overlay/router.h"
#include "snapshot/codec.h"

namespace ronpath {

std::string_view to_string(HybridMode mode) {
  switch (mode) {
    case HybridMode::kBestPath: return "best-path";
    case HybridMode::kAlwaysDuplicate: return "always-duplicate";
    case HybridMode::kAdaptive: return "adaptive";
  }
  return "?";
}

HybridSender::HybridSender(OverlayNetwork& overlay, HybridConfig cfg, Rng rng)
    : overlay_(overlay), cfg_(cfg), rng_(rng.fork("hybrid")) {
  alt_cfg_.indirect_loss_penalty = 0.0;  // disjointness, not preference
  // entry_ttl stays zero: the historical alternate scan trusted entries
  // forever regardless of the router's degradation policy.
  alt_engine_ = std::make_unique<PathEngine>(overlay_.table(), alt_cfg_);
}

HybridSender::~HybridSender() = default;

PathSpec HybridSender::alternate_path(NodeId src, NodeId dst, const PathSpec& primary) {
  // Best loss-estimate path whose intermediate differs from the primary's
  // (and from the direct path when the primary is direct: true one-hop
  // disjointness beyond the unavoidable shared edges).
  const std::vector<bool>* excluded = nullptr;
  if (!primary.is_direct()) {
    alt_excluded_.assign(overlay_.table().size(), false);
    alt_excluded_[primary.via] = true;
    excluded = &alt_excluded_;
  }
  const EngineChoice cand =
      alt_engine_->best_loss(src, dst, /*max_hops=*/1, TimePoint::epoch(), excluded,
                             /*include_direct=*/!primary.is_direct());
  if (!cand.valid) {
    // No candidate at all (tiny overlays): fall back to a random pick.
    return overlay_.route(src, dst, RouteTag::kRand);
  }
  return cand.path.to_spec(src, dst);
}

HybridOutcome HybridSender::send(NodeId src, NodeId dst, TimePoint now) {
  assert(src != dst);
  ++packets_;

  const PathChoice primary = overlay_.router(src).best_loss_path(dst);
  HybridOutcome out;
  out.probe.scheme = PairScheme::kLatLoss;  // closest registry label
  out.probe.probe_id = rng_.next_u64();
  out.probe.src = src;
  out.probe.dst = dst;

  CopyOutcome first;
  first.tag = RouteTag::kLoss;
  first.path = primary.path;
  first.sent = now;
  first.result = overlay_.send(primary.path, now);
  out.probe.copies.push_back(first);
  ++copies_;

  bool duplicate = false;
  switch (cfg_.mode) {
    case HybridMode::kBestPath:
      break;
    case HybridMode::kAlwaysDuplicate:
      duplicate = true;
      break;
    case HybridMode::kAdaptive: {
      duplicate = primary.loss >= cfg_.duplicate_threshold;
      if (!duplicate && cfg_.duplicate_on_down) {
        duplicate = path_down(overlay_.table(), primary.path);
      }
      break;
    }
  }

  if (duplicate) {
    CopyOutcome second;
    second.tag = RouteTag::kRand;
    second.path = alternate_path(src, dst, primary.path);
    second.sent = now;
    second.result = overlay_.send(second.path, now);
    out.probe.copies.push_back(second);
    ++copies_;
    ++duplicated_;
    out.duplicated = true;
  }
  return out;
}

double HybridSender::overhead_factor() const {
  return packets_ > 0 ? static_cast<double>(copies_) / static_cast<double>(packets_) : 1.0;
}

void HybridSender::save_state(snap::Encoder& e) const {
  e.tag("HYBR");
  snap::save_rng(e, rng_);
  e.i64(packets_);
  e.i64(copies_);
  e.i64(duplicated_);
}

void HybridSender::restore_state(snap::Decoder& d) {
  d.expect_tag("HYBR");
  snap::restore_rng(d, rng_);
  packets_ = d.i64();
  copies_ = d.i64();
  duplicated_ = d.i64();
}

void HybridSender::check_invariants(std::vector<std::string>& out) const {
  if (packets_ < 0 || copies_ < 0 || duplicated_ < 0) {
    out.push_back("hybrid sender: negative overhead counter");
    return;
  }
  // Every packet sends at least one copy; duplication adds exactly one.
  if (copies_ != packets_ + duplicated_) {
    out.push_back("hybrid sender: copies != packets + duplications");
  }
  if (duplicated_ > packets_) {
    out.push_back("hybrid sender: more duplications than packets");
  }
}

}  // namespace ronpath
