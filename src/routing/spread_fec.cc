#include "routing/spread_fec.h"

#include <cassert>
#include <utility>

namespace ronpath {

std::string_view to_string(FecStriping striping) {
  switch (striping) {
    case FecStriping::kSinglePath: return "single-path";
    case FecStriping::kAlternating: return "alternating";
    case FecStriping::kParityDetour: return "parity-detour";
  }
  return "?";
}

SpreadFecChannel::SpreadFecChannel(OverlayNetwork& overlay, Scheduler& sched, NodeId src,
                                   NodeId dst, SpreadFecConfig cfg, Rng rng)
    : overlay_(overlay),
      sched_(sched),
      src_(src),
      dst_(dst),
      cfg_(cfg),
      rng_(rng.fork("spread-fec")),
      encoder_(cfg.data_shards, cfg.parity_shards),
      decoder_(cfg.data_shards, cfg.parity_shards) {
  assert(src != dst);
  last_tx_ = sched_.now();
}

PathSpec SpreadFecChannel::path_for(const FecShard& shard) {
  const bool parity = shard.is_parity(cfg_.data_shards);
  switch (cfg_.striping) {
    case FecStriping::kSinglePath:
      return PathSpec{src_, dst_, kDirectVia};
    case FecStriping::kAlternating:
      if (shard.index % 2 == 0) return PathSpec{src_, dst_, kDirectVia};
      return overlay_.route(src_, dst_, RouteTag::kLoss);
    case FecStriping::kParityDetour:
      if (!parity) return PathSpec{src_, dst_, kDirectVia};
      return overlay_.route(src_, dst_, RouteTag::kRand);
  }
  return PathSpec{src_, dst_, kDirectVia};
}

void SpreadFecChannel::transmit_shard(const FecShard& shard) {
  ++stats_.shards_sent;
  const PathSpec path = path_for(shard);
  const OverlaySendResult sent = overlay_.send(path, sched_.now());
  if (!sent.delivered()) {
    ++stats_.shards_lost;
    return;
  }
  const auto recovered = decoder_.push(shard);
  for (const auto& payload : recovered) {
    (void)payload;
    ++stats_.delivered;
  }
  stats_.reconstructed = decoder_.reconstructed();
}

void SpreadFecChannel::dispatch(FecShard shard) {
  if (!shard.is_parity(cfg_.data_shards)) {
    // Data goes out with the stream ("standard codes": originals first,
    // no added latency in the no-loss case).
    last_tx_ = std::max(last_tx_, sched_.now());
    transmit_shard(shard);
    return;
  }
  // Parity shard j of the just-completed block is delayed by
  // parity_spread * (j + 1) past the block's last data transmission.
  const std::size_t j = shard.index - cfg_.data_shards;
  const TimePoint at =
      sched_.now() + cfg_.parity_spread * static_cast<std::int64_t>(j + 1);
  last_tx_ = std::max(last_tx_, at);
  sched_.schedule_at(at, [this, s = std::move(shard)] { transmit_shard(s); });
}

void SpreadFecChannel::send(std::vector<std::uint8_t> payload) {
  ++stats_.payloads;
  for (auto& shard : encoder_.push(std::move(payload))) {
    dispatch(std::move(shard));
  }
}

void SpreadFecChannel::flush() {
  for (auto& shard : encoder_.flush()) {
    dispatch(std::move(shard));
  }
}

}  // namespace ronpath
