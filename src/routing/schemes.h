// Registry of the probe/routing schemes measured in the paper.
//
// A scheme (Table 4 caption) is one or two packets, each routed by a
// per-copy tactic: direct / rand / lat / loss, with an optional temporal
// gap between the copies (dd 10 ms / dd 20 ms) and, for the direct direct
// family, the constraint that the second copy reuses the first copy's
// path. Which schemes were probed differs per dataset:
//   RON2003   - six probe sets (direct rand, lat loss, direct direct,
//               dd 10 ms, dd 20 ms, loss); direct* and lat* rows are
//               inferred from first copies (Table 5 footnote).
//   RONwide   - the expanded 12-method set of Table 7, round-trip probes.
//   RONnarrow - the three most promising methods (loss, direct rand,
//               lat loss), frequent one-way probes.

#ifndef RONPATH_ROUTING_SCHEMES_H_
#define RONPATH_ROUTING_SCHEMES_H_

#include <optional>
#include <span>
#include <string_view>

#include "util/time.h"
#include "wire/packet.h"

namespace ronpath {

struct SchemeSpec {
  PairScheme scheme = PairScheme::kDirect;
  std::string_view name;
  RouteTag first = RouteTag::kDirect;
  // Present only for two-packet schemes.
  std::optional<RouteTag> second;
  // Delay between the two copies (zero = back-to-back).
  Duration gap = Duration::zero();
  // Second copy reuses the exact path of the first (direct direct / dd *).
  bool second_same_path = false;

  [[nodiscard]] bool two_packets() const { return second.has_value(); }
  // Bandwidth overhead factor relative to a single packet.
  [[nodiscard]] double redundancy() const { return two_packets() ? 2.0 : 1.0; }
};

// Spec lookup; valid for every PairScheme enumerator.
[[nodiscard]] const SchemeSpec& scheme_spec(PairScheme scheme);

// All schemes, in enumerator order.
[[nodiscard]] std::span<const SchemeSpec> all_schemes();

// The probe sets of the three datasets (see Table 3).
[[nodiscard]] std::span<const PairScheme> ron2003_probe_set();
[[nodiscard]] std::span<const PairScheme> ronwide_probe_set();
[[nodiscard]] std::span<const PairScheme> ronnarrow_probe_set();

// The rows reported for each dataset's table (probed schemes plus the
// single-packet rows inferred from first copies).
[[nodiscard]] std::span<const PairScheme> ron2003_report_rows();
[[nodiscard]] std::span<const PairScheme> ronwide_report_rows();

// Scheme whose first copy infers the given single-packet row, if the row
// itself is not probed directly (Table 5's asterisked rows).
[[nodiscard]] std::optional<PairScheme> inference_source(PairScheme row);

}  // namespace ronpath

#endif  // RONPATH_ROUTING_SCHEMES_H_
