// Closed-loop FEC rate selection.
//
// Given a measured path loss probability p, pick the minimal parity
// count m such that an RS(k, m) block is unrecoverable with probability
// at most `target`: under independent per-shard loss, a block of k+m
// shards fails iff more than m shards are lost, so
//
//   P(fail) = sum_{j = m+1 .. k+m} C(k+m, j) p^j (1-p)^(k+m-j)
//
// and pick_parity() returns the smallest m in [0, m_max] meeting the
// target, or m_max when none does (the adaptive layer then escalates to
// duplication instead of paying ever more parity). This is the
// rate-allocation side of the Figure 6 design space turned into a
// per-flow control action: overhead (k+m)/k is chosen from measured
// path state instead of being a static analytic curve.
//
// Everything is closed-form double arithmetic on small integers —
// deterministic across runs and platforms for the magnitudes involved
// (k + m <= 255, binomial tails far from denormals).

#ifndef RONPATH_FEC_RATE_SELECT_H_
#define RONPATH_FEC_RATE_SELECT_H_

#include <cstddef>

namespace ronpath {

// P(more than m of k+m shards lost) with iid per-shard loss p.
[[nodiscard]] double fec_block_failure_prob(std::size_t k, std::size_t m, double loss_p);

// Minimal m in [0, m_max] with fec_block_failure_prob(k, m, p) <=
// target; m_max when no such m exists. k >= 1, k + m_max <= 255.
[[nodiscard]] std::size_t pick_parity(std::size_t k, double loss_p, double target,
                                      std::size_t m_max);

}  // namespace ronpath

#endif  // RONPATH_FEC_RATE_SELECT_H_
