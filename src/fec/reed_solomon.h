// Systematic Reed-Solomon erasure codec over GF(2^8).
//
// Encodes k data shards into k + m shards (the first k are the data
// verbatim - "standard codes" in the paper's Section 5.2 sense: originals
// are sent first so the no-loss case adds no latency). Any k of the k + m
// shards reconstruct the data.
//
// Construction: a (k+m) x k encoding matrix whose top k x k block is the
// identity and whose parity rows are taken from a Vandermonde matrix
// post-multiplied by the inverse of its own top square, guaranteeing that
// every k x k submatrix is invertible.

#ifndef RONPATH_FEC_REED_SOLOMON_H_
#define RONPATH_FEC_REED_SOLOMON_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace ronpath {

class ReedSolomon {
 public:
  // Requires 1 <= data_shards, 0 <= parity_shards,
  // data_shards + parity_shards <= 255.
  ReedSolomon(std::size_t data_shards, std::size_t parity_shards);

  [[nodiscard]] std::size_t data_shards() const { return k_; }
  [[nodiscard]] std::size_t parity_shards() const { return m_; }
  [[nodiscard]] std::size_t total_shards() const { return k_ + m_; }

  // Computes the m parity shards for k equal-length data shards.
  // data.size() == k, all shards the same size; returns m shards.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> encode(
      std::span<const std::vector<std::uint8_t>> data) const;

  // Reconstructs the k data shards from any k available shards.
  // `shards` has total_shards() entries; missing shards are empty vectors.
  // Returns nullopt if fewer than k shards are present or sizes mismatch.
  [[nodiscard]] std::optional<std::vector<std::vector<std::uint8_t>>> reconstruct(
      std::span<const std::vector<std::uint8_t>> shards) const;

  // Encoding matrix row for shard `r` (size k); exposed for tests.
  [[nodiscard]] std::span<const std::uint8_t> row(std::size_t r) const;

 private:
  std::size_t k_;
  std::size_t m_;
  // (k+m) x k row-major encoding matrix.
  std::vector<std::uint8_t> matrix_;
};

// Inverts a square row-major matrix over GF(256) in place; returns false
// if singular. Exposed for testing.
bool gf256_invert(std::vector<std::uint8_t>& mat, std::size_t n);

}  // namespace ronpath

#endif  // RONPATH_FEC_REED_SOLOMON_H_
