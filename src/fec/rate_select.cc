#include "fec/rate_select.h"

#include <algorithm>
#include <cassert>

namespace ronpath {

double fec_block_failure_prob(std::size_t k, std::size_t m, double loss_p) {
  assert(k >= 1 && k + m <= 255);
  const double p = std::clamp(loss_p, 0.0, 1.0);
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  const std::size_t n = k + m;
  // Walk the binomial pmf upward from j = 0 by the recurrence
  // pmf(j+1) = pmf(j) * (n-j)/(j+1) * p/(1-p); the tail above m is
  // 1 - CDF(m). Accumulating the head keeps every term positive and
  // well-scaled for n <= 255.
  const double ratio = p / (1.0 - p);
  double pmf = 1.0;
  for (std::size_t i = 0; i < n; ++i) pmf *= (1.0 - p);  // (1-p)^n
  double cdf = 0.0;
  for (std::size_t j = 0; j <= m; ++j) {
    cdf += pmf;
    pmf *= static_cast<double>(n - j) / static_cast<double>(j + 1) * ratio;
  }
  return std::clamp(1.0 - cdf, 0.0, 1.0);
}

std::size_t pick_parity(std::size_t k, double loss_p, double target, std::size_t m_max) {
  assert(k >= 1 && k + m_max <= 255);
  for (std::size_t m = 0; m <= m_max; ++m) {
    if (fec_block_failure_prob(k, m, loss_p) <= target) return m;
  }
  return m_max;
}

}  // namespace ronpath
