#include "fec/packet_fec.h"

#include <cassert>

namespace ronpath {
namespace {

// Wraps a payload as [u16 len | payload | zero pad] of width `padded_len`.
std::vector<std::uint8_t> frame(const std::vector<std::uint8_t>& payload,
                                std::size_t padded_len) {
  assert(payload.size() + 2 <= padded_len);
  std::vector<std::uint8_t> out(padded_len, 0);
  out[0] = static_cast<std::uint8_t>(payload.size() >> 8);
  out[1] = static_cast<std::uint8_t>(payload.size());
  std::copy(payload.begin(), payload.end(), out.begin() + 2);
  return out;
}

// Inverse of frame(); nullopt if the length prefix is inconsistent.
std::optional<std::vector<std::uint8_t>> unframe(const std::vector<std::uint8_t>& framed) {
  if (framed.size() < 2) return std::nullopt;
  const std::size_t len = static_cast<std::size_t>(framed[0]) << 8 | framed[1];
  if (len + 2 > framed.size()) return std::nullopt;
  return std::vector<std::uint8_t>(framed.begin() + 2,
                                   framed.begin() + 2 + static_cast<long>(len));
}

}  // namespace

FecEncoder::FecEncoder(std::size_t k, std::size_t m) : rs_(k, m) { pending_.reserve(k); }

std::vector<FecShard> FecEncoder::push(std::vector<std::uint8_t> payload) {
  assert(payload.size() <= 0xFFFF - 2);
  std::vector<FecShard> out;
  out.push_back(FecShard{block_, static_cast<std::uint16_t>(pending_.size()), payload});
  pending_.push_back(std::move(payload));
  if (pending_.size() == k()) {
    auto parity = emit_parity();
    out.insert(out.end(), std::make_move_iterator(parity.begin()),
               std::make_move_iterator(parity.end()));
  }
  return out;
}

std::vector<FecShard> FecEncoder::flush() {
  if (pending_.empty()) return {};
  while (pending_.size() < k()) pending_.emplace_back();
  return emit_parity();
}

std::vector<FecShard> FecEncoder::emit_parity() {
  std::size_t padded_len = 2;
  for (const auto& p : pending_) padded_len = std::max(padded_len, p.size() + 2);

  std::vector<std::vector<std::uint8_t>> framed;
  framed.reserve(k());
  for (const auto& p : pending_) framed.push_back(frame(p, padded_len));

  auto parity = rs_.encode(framed);
  std::vector<FecShard> out;
  out.reserve(m());
  for (std::size_t i = 0; i < parity.size(); ++i) {
    out.push_back(
        FecShard{block_, static_cast<std::uint16_t>(k() + i), std::move(parity[i])});
  }
  pending_.clear();
  ++block_;
  return out;
}

FecDecoder::FecDecoder(std::size_t k, std::size_t m, std::size_t max_tracked_blocks)
    : rs_(k, m), max_tracked_(max_tracked_blocks) {
  assert(max_tracked_ > 0);
}

std::vector<std::vector<std::uint8_t>> FecDecoder::push(const FecShard& shard) {
  const std::size_t k = rs_.data_shards();
  const std::size_t total = rs_.total_shards();
  std::vector<std::vector<std::uint8_t>> out;
  if (shard.index >= total) return out;

  auto [it, inserted] = blocks_.try_emplace(shard.block);
  BlockState& st = it->second;
  if (inserted) {
    st.shards.resize(total);
    st.returned.assign(k, false);
    // Bound memory: evict the oldest block when over budget.
    if (blocks_.size() > max_tracked_) blocks_.erase(blocks_.begin());
  }

  const bool parity = shard.index >= k;
  if (!st.shards[shard.index].empty() || (parity && st.decoded)) return out;
  if (parity && shard.bytes.empty()) return out;  // parity shards are never empty

  // Direct delivery of a data shard.
  if (!parity && !st.returned[shard.index]) {
    st.returned[shard.index] = true;
    ++delivered_;
    out.push_back(shard.bytes);
  }

  // Store; empty data payloads are stored as their framed form later.
  st.shards[shard.index] = shard.bytes;
  if (parity) st.padded_len = std::max(st.padded_len, shard.bytes.size());
  ++st.present;

  if (st.decoded || st.present < k || st.padded_len == 0) return out;

  // Check whether anything is actually missing.
  bool missing = false;
  for (std::size_t i = 0; i < k; ++i) {
    if (st.shards[i].empty()) {
      missing = true;
      break;
    }
  }
  if (!missing) {
    st.decoded = true;
    return out;
  }

  // Frame present data shards to the padded width and reconstruct.
  std::vector<std::vector<std::uint8_t>> work(total);
  for (std::size_t i = 0; i < total; ++i) {
    if (st.shards[i].empty()) continue;
    work[i] = (i < k) ? frame(st.shards[i], st.padded_len) : st.shards[i];
    if (work[i].size() != st.padded_len) return out;  // inconsistent widths
  }
  auto data = rs_.reconstruct(work);
  if (!data) return out;
  st.decoded = true;
  for (std::size_t i = 0; i < k; ++i) {
    if (st.returned[i]) continue;
    auto payload = unframe((*data)[i]);
    if (!payload) continue;
    st.returned[i] = true;
    ++reconstructed_;
    out.push_back(std::move(*payload));
  }
  return out;
}

}  // namespace ronpath
