// Packet-level FEC pipeline (Section 5.2 of the paper).
//
// The encoder groups consecutive data packets into blocks of k and emits m
// Reed-Solomon parity packets per block; originals are emitted immediately
// ("standard codes": no added latency when nothing is lost). The decoder
// reconstructs missing data packets once any k of the k+m shards of a
// block have arrived.
//
// Variable-length payloads are handled by the usual length-prefix trick:
// parity is computed over [u16 length | payload | zero padding] buffers
// equalized to the longest payload in the block, so data packets travel
// unpadded and only parity packets carry the block's padded width.

#ifndef RONPATH_FEC_PACKET_FEC_H_
#define RONPATH_FEC_PACKET_FEC_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "fec/reed_solomon.h"

namespace ronpath {

struct FecShard {
  std::uint64_t block = 0;   // block sequence number
  std::uint16_t index = 0;   // 0..k-1 data, k..k+m-1 parity
  std::vector<std::uint8_t> bytes;

  [[nodiscard]] bool is_parity(std::size_t k) const { return index >= k; }
};

class FecEncoder {
 public:
  // k data packets per block, m parity packets. k >= 1, k + m <= 255.
  FecEncoder(std::size_t k, std::size_t m);

  // Feeds one data payload. Returns the shards to transmit now: always the
  // data shard itself; plus the block's parity shards when it completes.
  [[nodiscard]] std::vector<FecShard> push(std::vector<std::uint8_t> payload);

  // Completes a partial block by padding with empty payloads, emitting its
  // parity. Returns an empty vector if the current block has no data.
  [[nodiscard]] std::vector<FecShard> flush();

  [[nodiscard]] std::size_t k() const { return rs_.data_shards(); }
  [[nodiscard]] std::size_t m() const { return rs_.parity_shards(); }
  [[nodiscard]] std::uint64_t current_block() const { return block_; }

 private:
  [[nodiscard]] std::vector<FecShard> emit_parity();

  ReedSolomon rs_;
  std::uint64_t block_ = 0;
  std::vector<std::vector<std::uint8_t>> pending_;  // raw payloads
};

class FecDecoder {
 public:
  FecDecoder(std::size_t k, std::size_t m, std::size_t max_tracked_blocks = 1024);

  // Feeds one received shard. Returns data payloads that became available
  // (in index order within the block): direct arrivals are returned
  // immediately; reconstruction results are returned once k shards of a
  // block are present. Duplicate shards are ignored. Each payload is
  // returned at most once.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> push(const FecShard& shard);

  // Statistics.
  [[nodiscard]] std::int64_t delivered() const { return delivered_; }
  [[nodiscard]] std::int64_t reconstructed() const { return reconstructed_; }

 private:
  struct BlockState {
    std::vector<std::vector<std::uint8_t>> shards;  // k+m slots, empty = missing
    std::vector<bool> returned;                     // per data index
    std::size_t present = 0;
    std::size_t padded_len = 0;  // known once any parity shard arrives
    bool decoded = false;
  };

  ReedSolomon rs_;
  std::size_t max_tracked_;
  std::map<std::uint64_t, BlockState> blocks_;
  std::int64_t delivered_ = 0;
  std::int64_t reconstructed_ = 0;
};

}  // namespace ronpath

#endif  // RONPATH_FEC_PACKET_FEC_H_
