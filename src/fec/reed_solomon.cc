#include "fec/reed_solomon.h"

#include <cassert>

#include "fec/gf256.h"

namespace ronpath {
namespace {

// Row-major (rows x cols) * (cols x cols2) multiply.
std::vector<std::uint8_t> mat_mul(std::span<const std::uint8_t> a, std::size_t rows,
                                  std::size_t cols, std::span<const std::uint8_t> b,
                                  std::size_t cols2) {
  std::vector<std::uint8_t> out(rows * cols2, 0);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::uint8_t av = a[r * cols + c];
      if (av == 0) continue;
      for (std::size_t c2 = 0; c2 < cols2; ++c2) {
        out[r * cols2 + c2] ^= gf256::mul(av, b[c * cols2 + c2]);
      }
    }
  }
  return out;
}

}  // namespace

bool gf256_invert(std::vector<std::uint8_t>& mat, std::size_t n) {
  assert(mat.size() == n * n);
  // Gauss-Jordan with an adjoined identity.
  std::vector<std::uint8_t> aug(n * 2 * n, 0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) aug[r * 2 * n + c] = mat[r * n + c];
    aug[r * 2 * n + n + r] = 1;
  }
  for (std::size_t col = 0; col < n; ++col) {
    // Find pivot.
    std::size_t pivot = col;
    while (pivot < n && aug[pivot * 2 * n + col] == 0) ++pivot;
    if (pivot == n) return false;
    if (pivot != col) {
      for (std::size_t c = 0; c < 2 * n; ++c) {
        std::swap(aug[pivot * 2 * n + c], aug[col * 2 * n + c]);
      }
    }
    const std::uint8_t pv = aug[col * 2 * n + col];
    const std::uint8_t pv_inv = gf256::inv(pv);
    for (std::size_t c = 0; c < 2 * n; ++c) {
      aug[col * 2 * n + c] = gf256::mul(aug[col * 2 * n + c], pv_inv);
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const std::uint8_t f = aug[r * 2 * n + col];
      if (f == 0) continue;
      for (std::size_t c = 0; c < 2 * n; ++c) {
        aug[r * 2 * n + c] ^= gf256::mul(f, aug[col * 2 * n + c]);
      }
    }
  }
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) mat[r * n + c] = aug[r * 2 * n + n + c];
  }
  return true;
}

ReedSolomon::ReedSolomon(std::size_t data_shards, std::size_t parity_shards)
    : k_(data_shards), m_(parity_shards) {
  assert(k_ >= 1);
  assert(k_ + m_ <= 255);

  // Vandermonde (k+m) x k: V[r][c] = r^c (with 0^0 = 1).
  const std::size_t rows = k_ + m_;
  std::vector<std::uint8_t> vand(rows * k_);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < k_; ++c) {
      vand[r * k_ + c] = gf256::pow(static_cast<std::uint8_t>(r + 1), static_cast<unsigned>(c));
    }
  }
  // Normalize so the top k x k block becomes the identity: V * top^-1.
  std::vector<std::uint8_t> top(vand.begin(), vand.begin() + static_cast<long>(k_ * k_));
  const bool ok = gf256_invert(top, k_);
  assert(ok && "Vandermonde top block must be invertible");
  (void)ok;
  matrix_ = mat_mul(vand, rows, k_, top, k_);
}

std::span<const std::uint8_t> ReedSolomon::row(std::size_t r) const {
  assert(r < k_ + m_);
  return std::span<const std::uint8_t>(matrix_).subspan(r * k_, k_);
}

std::vector<std::vector<std::uint8_t>> ReedSolomon::encode(
    std::span<const std::vector<std::uint8_t>> data) const {
  assert(data.size() == k_);
  const std::size_t shard_len = data.empty() ? 0 : data[0].size();
  for (const auto& d : data) {
    assert(d.size() == shard_len);
    (void)d;
  }
  std::vector<std::vector<std::uint8_t>> parity(m_, std::vector<std::uint8_t>(shard_len, 0));
  for (std::size_t p = 0; p < m_; ++p) {
    const auto coeffs = row(k_ + p);
    for (std::size_t c = 0; c < k_; ++c) {
      gf256::mul_add(parity[p], data[c], coeffs[c]);
    }
  }
  return parity;
}

std::optional<std::vector<std::vector<std::uint8_t>>> ReedSolomon::reconstruct(
    std::span<const std::vector<std::uint8_t>> shards) const {
  if (shards.size() != k_ + m_) return std::nullopt;

  std::vector<std::size_t> present;
  std::size_t shard_len = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (shards[i].empty()) continue;
    if (shard_len == 0) {
      shard_len = shards[i].size();
    } else if (shards[i].size() != shard_len) {
      return std::nullopt;
    }
    present.push_back(i);
    if (present.size() == k_) break;
  }
  if (present.size() < k_ || shard_len == 0) return std::nullopt;

  // Fast path: all data shards present.
  bool all_data = true;
  for (std::size_t i = 0; i < k_; ++i) {
    if (shards[i].empty()) {
      all_data = false;
      break;
    }
  }
  if (all_data) {
    return std::vector<std::vector<std::uint8_t>>(shards.begin(),
                                                  shards.begin() + static_cast<long>(k_));
  }

  // Build the k x k submatrix of the rows we have and invert it.
  std::vector<std::uint8_t> sub(k_ * k_);
  for (std::size_t r = 0; r < k_; ++r) {
    const auto src = row(present[r]);
    for (std::size_t c = 0; c < k_; ++c) sub[r * k_ + c] = src[c];
  }
  if (!gf256_invert(sub, k_)) return std::nullopt;

  std::vector<std::vector<std::uint8_t>> data(k_, std::vector<std::uint8_t>(shard_len, 0));
  for (std::size_t r = 0; r < k_; ++r) {
    for (std::size_t c = 0; c < k_; ++c) {
      gf256::mul_add(data[r], shards[present[c]], sub[r * k_ + c]);
    }
  }
  return data;
}

}  // namespace ronpath
