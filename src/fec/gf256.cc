#include "fec/gf256.h"

#include <cassert>

namespace ronpath::gf256 {
namespace {

Tables build_tables() {
  Tables t{};
  // Generator 0x02 over the primitive polynomial 0x11D.
  std::uint16_t x = 1;
  for (int i = 0; i < 255; ++i) {
    t.exp[i] = static_cast<std::uint8_t>(x);
    t.log[x] = static_cast<std::uint8_t>(i);
    x <<= 1;
    if (x & 0x100) x ^= 0x11D;
  }
  for (int i = 255; i < 512; ++i) t.exp[i] = t.exp[i - 255];
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      t.mul[a][b] = (a == 0 || b == 0)
                        ? 0
                        : t.exp[t.log[a] + t.log[b]];
    }
  }
  return t;
}

}  // namespace

const Tables& tables() {
  static const Tables t = build_tables();
  return t;
}

std::uint8_t div(std::uint8_t a, std::uint8_t b) {
  assert(b != 0);
  if (a == 0) return 0;
  const auto& t = tables();
  return t.exp[t.log[a] + 255 - t.log[b]];
}

std::uint8_t inv(std::uint8_t a) {
  assert(a != 0);
  const auto& t = tables();
  return t.exp[255 - t.log[a]];
}

std::uint8_t pow(std::uint8_t a, unsigned power) {
  if (power == 0) return 1;
  if (a == 0) return 0;
  const auto& t = tables();
  const unsigned e = (static_cast<unsigned>(t.log[a]) * power) % 255;
  return t.exp[e];
}

void mul_add(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src, std::uint8_t c) {
  assert(dst.size() == src.size());
  if (c == 0) return;
  const auto& row = tables().mul[c];
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= row[src[i]];
}

}  // namespace ronpath::gf256
