// GF(2^8) arithmetic for Reed-Solomon erasure coding.
//
// Field: polynomial basis with the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D), generator 0x02 - the conventional
// choice for packet-level RS codes (Rizzo-style, as cited by the paper's
// Section 5.2 discussion of FEC).

#ifndef RONPATH_FEC_GF256_H_
#define RONPATH_FEC_GF256_H_

#include <array>
#include <cstdint>
#include <span>

namespace ronpath::gf256 {

// Tables are built once at static-init time.
struct Tables {
  std::array<std::uint8_t, 256> log;        // log[0] unused
  std::array<std::uint8_t, 512> exp;        // doubled to skip mod 255
  std::array<std::array<std::uint8_t, 256>, 256> mul;
};
[[nodiscard]] const Tables& tables();

[[nodiscard]] inline std::uint8_t add(std::uint8_t a, std::uint8_t b) {
  return a ^ b;  // characteristic 2: addition is XOR
}
[[nodiscard]] inline std::uint8_t sub(std::uint8_t a, std::uint8_t b) { return a ^ b; }

[[nodiscard]] inline std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  return tables().mul[a][b];
}

// Division a / b; b must be nonzero.
[[nodiscard]] std::uint8_t div(std::uint8_t a, std::uint8_t b);

// Multiplicative inverse; a must be nonzero.
[[nodiscard]] std::uint8_t inv(std::uint8_t a);

// a^power for non-negative power.
[[nodiscard]] std::uint8_t pow(std::uint8_t a, unsigned power);

// dst[i] ^= c * src[i]; the inner loop of encode/decode.
void mul_add(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src, std::uint8_t c);

}  // namespace ronpath::gf256

#endif  // RONPATH_FEC_GF256_H_
