#include "core/experiment.h"

#include <fstream>
#include <optional>

#include <stdexcept>

#include "core/driver.h"
#include "core/testbed.h"
#include "net/scale_topology.h"
#include "event/scheduler.h"
#include "fault/injector.h"
#include "net/config.h"
#include "overlay/overlay.h"
#include "pdes/advance.h"
#include "routing/schemes.h"

namespace ronpath {

std::string_view to_string(Dataset d) {
  switch (d) {
    case Dataset::kRon2003: return "RON2003";
    case Dataset::kRonWide: return "RONwide";
    case Dataset::kRonNarrow: return "RONnarrow";
  }
  return "?";
}

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  if (cfg.path_depth < 1 || cfg.path_depth > 2) {
    throw std::invalid_argument("path_depth must be 1 or 2 (forwarding carries <= 2 relays)");
  }
  if (cfg.lazy_underlay && cfg.shards > 0) {
    throw std::invalid_argument("lazy_underlay is incompatible with sharded execution");
  }
  const bool is_2003 = cfg.dataset == Dataset::kRon2003;
  Topology topo = [&] {
    if (cfg.synth_nodes > 0) {
      ScaleTopologyParams params;
      params.nodes = cfg.synth_nodes;
      params.seed = cfg.seed;
      return scale_topology(params);
    }
    Topology t = is_2003 ? testbed_2003() : testbed_2002();
    if (cfg.node_count && *cfg.node_count < t.size()) {
      std::vector<Site> subset(t.sites().begin(),
                               t.sites().begin() + static_cast<long>(*cfg.node_count));
      t = Topology(std::move(subset));
    }
    return t;
  }();
  const Duration run_span = cfg.warmup + cfg.duration;
  NetConfig net_cfg =
      is_2003 ? NetConfig::profile_2003(run_span) : NetConfig::profile_2002(run_span);
  if (cfg.loss_scale) net_cfg.loss_scale *= *cfg.loss_scale;
  if (cfg.disable_incidents) net_cfg.incidents.clear();
  if (cfg.provider_cross_fraction) {
    net_cfg.provider_events.cross_fraction = *cfg.provider_cross_fraction;
  }
  net_cfg.lazy_components = cfg.lazy_underlay;

  Rng rng(cfg.seed);
  Scheduler sched;
  const Duration horizon = cfg.warmup + cfg.duration + Duration::hours(1);
  Network net(topo, net_cfg, horizon, rng.fork("net"));
  std::optional<pdes::AdvanceService> advance;
  if (cfg.shards > 0) {
    net.enable_sharded_underlay();
    advance.emplace(net, pdes::ShardPlan::build(net, cfg.shards));
    net.set_advance_hook(&*advance);
  }

  OverlayConfig overlay_cfg;
  overlay_cfg.router.forward_delay = net_cfg.forward_delay;
  if (cfg.probe_interval) overlay_cfg.probe_interval = *cfg.probe_interval;
  if (cfg.host_failures_per_month) {
    overlay_cfg.host_failures_per_month = *cfg.host_failures_per_month;
  }
  overlay_cfg.use_ewma_loss = cfg.use_ewma_loss;
  overlay_cfg.router.max_intermediates = cfg.path_depth;
  overlay_cfg.fanout = cfg.overlay_fanout;
  overlay_cfg.landmarks = cfg.overlay_landmarks;
  if (cfg.graceful_degradation) {
    // Entries expire after five missed publications; flapping vias serve
    // a doubling hold-down starting at two probe intervals.
    overlay_cfg.router.entry_ttl = overlay_cfg.probe_interval * 5;
    overlay_cfg.router.holddown_base = overlay_cfg.probe_interval * 2;
  }
  OverlayNetwork overlay(net, sched, overlay_cfg, rng.fork("overlay"));
  std::unique_ptr<FaultInjector> injector;
  if (!cfg.fault_dsl.empty()) {
    std::string parse_error;
    const auto schedule = FaultSchedule::parse(cfg.fault_dsl, &parse_error);
    if (!schedule) throw std::runtime_error("fault schedule: " + parse_error);
    injector = std::make_unique<FaultInjector>(*schedule, topo, horizon);
    overlay.set_fault_injector(injector.get());
  }
  overlay.start();

  DriverConfig driver_cfg;
  switch (cfg.dataset) {
    case Dataset::kRon2003: {
      const auto set = ron2003_probe_set();
      driver_cfg.probe_set.assign(set.begin(), set.end());
      driver_cfg.round_trip = false;
      break;
    }
    case Dataset::kRonWide: {
      const auto set = ronwide_probe_set();
      driver_cfg.probe_set.assign(set.begin(), set.end());
      driver_cfg.round_trip = true;
      break;
    }
    case Dataset::kRonNarrow: {
      const auto set = ronnarrow_probe_set();
      driver_cfg.probe_set.assign(set.begin(), set.end());
      driver_cfg.round_trip = false;
      break;
    }
  }

  AggregatorConfig agg_cfg;
  agg_cfg.measure_start = TimePoint::epoch() + cfg.warmup;
  agg_cfg.round_trip = driver_cfg.round_trip;
  auto agg = std::make_unique<Aggregator>(topo.size(), driver_cfg.probe_set, agg_cfg);

  std::ofstream record_file;
  std::unique_ptr<RecordStreamWriter> record_writer;
  if (!cfg.record_path.empty()) {
    record_file.open(cfg.record_path, std::ios::binary);
    record_writer = std::make_unique<RecordStreamWriter>(record_file);
    driver_cfg.record_tee = [&w = *record_writer](const ProbeRecord& rec) { w.add(rec); };
  }

  ProbeDriver driver(overlay, sched, *agg, driver_cfg, rng.fork("driver"));
  driver.start();

  const TimePoint end = TimePoint::epoch() + cfg.warmup + cfg.duration;
  sched.run_until(end);
  agg->finish(end);

  return ExperimentResult{std::move(agg),          std::move(topo),
                          net.stats(),             driver.probes_emitted(),
                          overlay.probes_sent(),   sched.dispatched_events(),
                          cfg.duration};
}

}  // namespace ronpath
