// Multi-trial experiment runner: N independent realizations of one
// ExperimentConfig, sharded across a work-stealing thread pool.
//
// Seed splitting: trial 0 runs under the config's own seed (so a single
// trial reproduces the historical single-run output bit for bit); trial
// i > 0 runs under Rng(cfg.seed).fork("trial").fork(i), which derives
// disjoint xoshiro streams from the (seed, trial) pair the same way every
// simulator component already forks its own stream. The mapping depends
// only on (cfg.seed, i) — never on thread assignment or completion order —
// and results are stored by trial index, so the outcome is bit-identical
// for every n_jobs value.
//
// Each trial owns a private Scheduler / Network / Overlay / Aggregator;
// no simulator state is shared between threads.

#ifndef RONPATH_CORE_TRIALS_H_
#define RONPATH_CORE_TRIALS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/experiment.h"
#include "measure/report.h"

namespace ronpath {

// The derived seed for one trial of a base seed (see header comment).
[[nodiscard]] std::uint64_t trial_seed(std::uint64_t base_seed, int trial);

struct TrialResult {
  std::uint64_t seed = 0;
  ExperimentResult result;
  double wall_seconds = 0.0;  // this trial's own elapsed time
  double cpu_seconds = 0.0;   // this trial's thread-CPU time
};

struct TrialsResult {
  std::vector<TrialResult> trials;  // index == trial index
  double wall_seconds = 0.0;        // end-to-end elapsed time
  // Sum of per-trial thread-CPU time: what one thread would have paid.
  // (CPU time, not per-trial wall, so contention on an oversubscribed
  // host does not inflate the estimate.)
  double serial_seconds = 0.0;
  // Observed parallel speedup; ~1.0 when n_jobs == 1.
  [[nodiscard]] double speedup() const {
    return wall_seconds > 0.0 ? serial_seconds / wall_seconds : 1.0;
  }
};

// Runs `n_trials` independent realizations of `cfg` on up to `n_jobs`
// threads (n_jobs <= 1 runs inline on the caller's thread). When
// cfg.record_path is set and n_trials > 1 each trial streams records to
// "<record_path>.trial<i>" so writers never race.
[[nodiscard]] TrialsResult run_experiment_trials(const ExperimentConfig& cfg, int n_trials,
                                                 int n_jobs);

// Cross-trial report: per-row mean +/- 95% CI loss table plus Section 4.2
// base statistics, computed from each trial's private aggregator.
struct CrossTrial {
  std::vector<LossTableRowCi> rows;
  BaseStatsCi base;
  std::vector<std::vector<LossTableRow>> per_trial_rows;  // source tables
};

[[nodiscard]] CrossTrial make_cross_trial(const TrialsResult& trials,
                                          std::span<const PairScheme> report_rows,
                                          PairScheme base_scheme);

}  // namespace ronpath

#endif  // RONPATH_CORE_TRIALS_H_
