#include "core/fault_matrix.h"

#include <array>
#include <sstream>

#include "core/cell_env.h"
#include "core/trials.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace ronpath {
namespace {

constexpr std::array<FaultScheme, 4> kSchemes = {
    FaultScheme::kDirect, FaultScheme::kReactive, FaultScheme::kMesh, FaultScheme::kHybrid};

double pct(std::int64_t lost, std::int64_t sent) {
  return sent > 0 ? 100.0 * static_cast<double>(lost) / static_cast<double>(sent) : 0.0;
}

}  // namespace

std::string_view to_string(FaultScheme scheme) {
  switch (scheme) {
    case FaultScheme::kDirect: return "direct";
    case FaultScheme::kReactive: return "reactive";
    case FaultScheme::kMesh: return "mesh";
    case FaultScheme::kHybrid: return "hybrid";
  }
  return "?";
}

std::span<const FaultScheme> all_fault_schemes() { return kSchemes; }

FaultCell run_fault_cell(const Scenario& scenario, FaultScheme scheme,
                         const FaultMatrixConfig& cfg, std::uint64_t seed) {
  const HybridMode mode =
      scheme == FaultScheme::kMesh ? HybridMode::kAlwaysDuplicate : HybridMode::kAdaptive;
  CellEnv env(scenario, mode, cfg, seed);
  Scheduler& sched = env.sched;
  Network& net = *env.net;
  OverlayNetwork& overlay = *env.overlay;
  HybridSender& sender = *env.sender;
  const FaultInjector& injector = *env.injector;

  const NodeId src = 0;
  const NodeId dst = 1;
  const TimePoint measure_start = TimePoint::epoch() + cfg.warmup;
  const TimePoint end = measure_start + cfg.measured;
  sched.run_until(measure_start);

  std::vector<bool> delivered;
  delivered.reserve(
      static_cast<std::size_t>(cfg.measured.count_nanos() / cfg.send_interval.count_nanos()) + 1);
  for (TimePoint t = measure_start; t < end; t += cfg.send_interval) {
    sched.run_until(t);
    bool ok = false;
    switch (scheme) {
      case FaultScheme::kDirect:
        ok = overlay.send(overlay.route(src, dst, RouteTag::kDirect), t).delivered();
        break;
      case FaultScheme::kReactive:
        ok = overlay.send(overlay.route(src, dst, RouteTag::kLoss), t).delivered();
        break;
      case FaultScheme::kMesh:
      case FaultScheme::kHybrid:
        ok = sender.send(src, dst, t).delivered();
        break;
    }
    delivered.push_back(ok);
  }
  sched.run_until(end);

  FaultCell cell = analyze_fault_cell(scenario, cfg, delivered);
  cell.overhead = (scheme == FaultScheme::kMesh || scheme == FaultScheme::kHybrid)
                      ? sender.overhead_factor()
                      : 1.0;
  cell.route_switches = overlay.router(src).loss_switches(dst);
  cell.injected_drops = net.stats().dropped_injected;
  cell.merged_fault_windows = injector.merged_window_count();
  return cell;
}

FaultCell analyze_fault_cell(const Scenario& scenario, const FaultMatrixConfig& cfg,
                             const std::vector<bool>& delivered) {
  const TimePoint measure_start = TimePoint::epoch() + cfg.warmup;
  const TimePoint fault_start = scenario.fault_start;
  const TimePoint fault_end = scenario.fault_start + scenario.fault_duration;
  const auto time_of = [&](std::size_t i) {
    return measure_start + cfg.send_interval * static_cast<std::int64_t>(i);
  };
  const std::size_t n = delivered.size();
  const auto streak_ok = [&](std::size_t j) {
    if (j + static_cast<std::size_t>(cfg.stable_streak) > n) return false;
    for (int k = 0; k < cfg.stable_streak; ++k) {
      if (!delivered[j + static_cast<std::size_t>(k)]) return false;
    }
    return true;
  };

  FaultCell cell;
  std::int64_t sent_pre = 0, lost_pre = 0, sent_fault = 0, lost_fault = 0, sent_post = 0,
               lost_post = 0;
  std::size_t first_fault_loss = n;  // n = none
  std::size_t first_post = n;
  for (std::size_t i = 0; i < n; ++i) {
    const TimePoint t = time_of(i);
    const bool lost = !delivered[i];
    if (t < fault_start) {
      ++sent_pre;
      lost_pre += lost;
    } else if (t < fault_end) {
      ++sent_fault;
      lost_fault += lost;
      if (lost && first_fault_loss == n) first_fault_loss = i;
    } else {
      if (first_post == n) first_post = i;
      ++sent_post;
      lost_post += lost;
    }
  }
  cell.loss_pre_pct = pct(lost_pre, sent_pre);
  cell.loss_fault_pct = pct(lost_fault, sent_fault);
  cell.loss_post_pct = pct(lost_post, sent_post);

  if (first_fault_loss == n) {
    // The scheme rode the fault out without a single loss.
    cell.failover_measured = sent_fault > 0;
    cell.failover_s = 0.0;
  } else {
    for (std::size_t j = first_fault_loss; j < n; ++j) {
      if (streak_ok(j)) {
        cell.failover_measured = true;
        cell.failover_s = (time_of(j) - fault_start).to_seconds_f();
        break;
      }
    }
  }
  for (std::size_t j = first_post; j < n; ++j) {
    if (streak_ok(j)) {
      cell.recovery_measured = true;
      cell.recovery_s = (time_of(j) - fault_end).to_seconds_f();
      break;
    }
  }
  return cell;
}

FaultMatrixResult run_fault_matrix(const FaultMatrixConfig& cfg,
                                   std::span<const Scenario> scenarios, int n_trials,
                                   int n_jobs) {
  FaultMatrixResult result;
  result.cfg = cfg;
  result.n_trials = n_trials;
  const std::size_t n_cells = scenarios.size() * kSchemes.size();
  result.cells.resize(n_cells);
  for (std::size_t c = 0; c < n_cells; ++c) {
    result.cells[c].scenario = std::string(scenarios[c / kSchemes.size()].name);
    result.cells[c].scheme = kSchemes[c % kSchemes.size()];
    result.cells[c].trials.resize(static_cast<std::size_t>(n_trials));
  }

  const std::size_t total = n_cells * static_cast<std::size_t>(n_trials);
  ThreadPool::for_each_index(total, static_cast<std::size_t>(n_jobs), [&](std::size_t task) {
    const std::size_t c = task / static_cast<std::size_t>(n_trials);
    const int trial = static_cast<int>(task % static_cast<std::size_t>(n_trials));
    const Scenario& scenario = scenarios[c / kSchemes.size()];
    result.cells[c].trials[static_cast<std::size_t>(trial)] = run_fault_cell(
        scenario, kSchemes[c % kSchemes.size()], cfg, trial_seed(cfg.seed, trial));
  });

  for (auto& cell : result.cells) {
    std::vector<double> pre, fault, post, failover, recovery, overhead;
    for (const FaultCell& t : cell.trials) {
      pre.push_back(t.loss_pre_pct);
      fault.push_back(t.loss_fault_pct);
      post.push_back(t.loss_post_pct);
      if (t.failover_measured) failover.push_back(t.failover_s);
      if (t.recovery_measured) recovery.push_back(t.recovery_s);
      overhead.push_back(t.overhead);
    }
    cell.loss_pre_pct = summarize_metric(pre);
    cell.loss_fault_pct = summarize_metric(fault);
    cell.loss_post_pct = summarize_metric(post);
    cell.failover_s = summarize_metric(failover);
    cell.recovery_s = summarize_metric(recovery);
    cell.overhead = summarize_metric(overhead);
    cell.route_switches = cell.trials[0].route_switches;
    cell.injected_drops = cell.trials[0].injected_drops;
    cell.merged_fault_windows = cell.trials[0].merged_fault_windows;
  }
  return result;
}

std::string format_fault_matrix(const FaultMatrixResult& result,
                                std::span<const Scenario> scenarios) {
  std::ostringstream os;
  const FaultMatrixConfig& cfg = result.cfg;
  os << "== Fault matrix: scheme x scenario ==\n";
  os << "nodes " << cfg.node_count << " | seed " << cfg.seed << " | warmup "
     << cfg.warmup.to_string() << " | measured " << cfg.measured.to_string() << " | send every "
     << cfg.send_interval.to_string() << " | degradation "
     << (cfg.graceful_degradation ? "on" : "off") << " | trials " << result.n_trials << "\n";
  // Duplicate windows in a schedule are legal but have no effect; warn so
  // the author notices. Scenario-major stride over the scheme-expanded
  // cell list, since every scheme compiles the same schedule.
  std::int64_t merged_windows = 0;
  for (std::size_t c = 0; c < result.cells.size(); c += all_fault_schemes().size()) {
    merged_windows += result.cells[c].merged_fault_windows;
  }
  if (merged_windows > 0) {
    os << "warning: " << merged_windows
       << " duplicate/overlapping fault window(s) were silently merged\n";
  }

  std::size_t c = 0;
  for (const Scenario& scenario : scenarios) {
    os << "\n-- " << scenario.name << (scenario.routable ? " (routable)" : " (unroutable)")
       << ": " << scenario.summary << "\n";
    // Echo the schedule so the report is reproducible by itself.
    std::istringstream dsl{std::string(scenario.dsl)};
    for (std::string line; std::getline(dsl, line);) {
      if (!line.empty()) os << "     " << line << "\n";
    }
    TextTable t({"scheme", "loss pre", "loss fault", "loss post", "failover", "recovery",
                 "overhead", "switches", "injected"});
    for (std::size_t s = 0; s < all_fault_schemes().size(); ++s, ++c) {
      const FaultCellSummary& cell = result.cells[c];
      const auto dur_cell = [](const MetricSummary& m) {
        return m.n > 0 ? TextTable::num_ci(m.mean, m.ci95_half, 1) + "s" : std::string("-");
      };
      t.add_row({std::string(to_string(cell.scheme)),
                 TextTable::num_ci(cell.loss_pre_pct.mean, cell.loss_pre_pct.ci95_half) + "%",
                 TextTable::num_ci(cell.loss_fault_pct.mean, cell.loss_fault_pct.ci95_half) + "%",
                 TextTable::num_ci(cell.loss_post_pct.mean, cell.loss_post_pct.ci95_half) + "%",
                 dur_cell(cell.failover_s), dur_cell(cell.recovery_s),
                 TextTable::num_ci(cell.overhead.mean, cell.overhead.ci95_half),
                 TextTable::num(cell.route_switches), TextTable::num(cell.injected_drops)});
    }
    os << t.to_string();
  }
  return os.str();
}

}  // namespace ronpath
