#include "core/trials.h"

#include <chrono>
#include <ctime>
#include <optional>
#include <string>
#include <utility>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace ronpath {
namespace {

double elapsed_seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

double thread_cpu_seconds() {
#ifdef __linux__
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return 0.0;
}

}  // namespace

std::uint64_t trial_seed(std::uint64_t base_seed, int trial) {
  if (trial == 0) return base_seed;
  return Rng(base_seed).fork("trial").fork(static_cast<std::uint64_t>(trial)).next_u64();
}

TrialsResult run_experiment_trials(const ExperimentConfig& cfg, int n_trials, int n_jobs) {
  TrialsResult out;
  if (n_trials <= 0) return out;
  // Slots are written by trial index (never completion order), which is
  // what makes the outcome independent of n_jobs.
  std::vector<std::optional<TrialResult>> slots(static_cast<std::size_t>(n_trials));

  const auto start = std::chrono::steady_clock::now();
  ThreadPool::for_each_index(
      static_cast<std::size_t>(n_trials), static_cast<std::size_t>(n_jobs > 0 ? n_jobs : 1),
      [&](std::size_t i) {
        ExperimentConfig trial_cfg = cfg;
        trial_cfg.seed = trial_seed(cfg.seed, static_cast<int>(i));
        if (!cfg.record_path.empty() && n_trials > 1) {
          trial_cfg.record_path = cfg.record_path + ".trial" + std::to_string(i);
        }
        const auto trial_start = std::chrono::steady_clock::now();
        const double cpu_start = thread_cpu_seconds();
        ExperimentResult result = run_experiment(trial_cfg);
        const double cpu = thread_cpu_seconds() - cpu_start;
        slots[i] =
            TrialResult{trial_cfg.seed, std::move(result), elapsed_seconds(trial_start), cpu};
      });
  out.wall_seconds = elapsed_seconds(start);
  out.trials.reserve(slots.size());
  for (auto& slot : slots) {
    // Fall back to per-trial wall when thread CPU time is unavailable.
    out.serial_seconds += slot->cpu_seconds > 0.0 ? slot->cpu_seconds : slot->wall_seconds;
    out.trials.push_back(std::move(*slot));
  }
  return out;
}

CrossTrial make_cross_trial(const TrialsResult& trials, std::span<const PairScheme> report_rows,
                            PairScheme base_scheme) {
  CrossTrial ct;
  ct.per_trial_rows.reserve(trials.trials.size());
  std::vector<BaseStats> bases;
  bases.reserve(trials.trials.size());
  for (const auto& t : trials.trials) {
    ct.per_trial_rows.push_back(make_loss_table(*t.result.agg, report_rows));
    bases.push_back(make_base_stats(*t.result.agg, base_scheme));
  }
  ct.rows = make_loss_table_ci(ct.per_trial_rows);
  ct.base = make_base_stats_ci(bases);
  return ct;
}

}  // namespace ronpath
