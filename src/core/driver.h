// The measurement probe driver (Section 4.1).
//
// Each node periodically initiates probes: it cycles through the probe
// types of its dataset's probe set, picks a random destination, sends the
// probe (one or two packets through the routing schemes under test),
// waits a random 0.6-1.2 s, and repeats. Every probe carries a random
// 64-bit identifier; outcomes are logged as ProbeRecords to the
// aggregator, together with per-node send-activity heartbeats that drive
// the host-failure filter.
//
// Clock model: "most, but not all, hosts have GPS-synchronized clocks".
// A configurable fraction of hosts receive a fixed clock offset; one-way
// latencies are recorded against the receiver's skewed clock. The report
// layer cancels the skew by averaging forward and reverse path latencies,
// as the paper does.
//
// Round-trip mode (RONwide): each delivered copy is echoed back along the
// reverse of its path; the copy counts as delivered only if the echo
// returns, and its latency is the RTT.

#ifndef RONPATH_CORE_DRIVER_H_
#define RONPATH_CORE_DRIVER_H_

#include <functional>
#include <memory>
#include <vector>

#include "event/scheduler.h"
#include "measure/aggregator.h"
#include "overlay/overlay.h"
#include "routing/multipath.h"
#include "routing/schemes.h"
#include "util/rng.h"

namespace ronpath {

struct DriverConfig {
  std::vector<PairScheme> probe_set;
  // Optional tee invoked with every record emitted (dataset capture).
  std::function<void(const ProbeRecord&)> record_tee;
  Duration min_gap = Duration::from_millis_f(600);
  Duration max_gap = Duration::from_millis_f(1200);
  bool round_trip = false;
  // Fraction of hosts without GPS-synchronized clocks, and the stddev of
  // their constant clock offsets.
  double non_gps_fraction = 0.15;
  double clock_offset_sigma_ms = 8.0;
};

class ProbeDriver {
 public:
  ProbeDriver(OverlayNetwork& overlay, Scheduler& sched, Aggregator& agg, DriverConfig cfg,
              Rng rng);

  // Starts the per-node probe loops (idempotent).
  void start();

  [[nodiscard]] std::int64_t probes_emitted() const { return probes_; }
  // Clock offset applied to a node's receive timestamps (0 for GPS hosts).
  [[nodiscard]] Duration clock_offset(NodeId node) const { return clock_offsets_[node]; }

 private:
  void node_tick(NodeId node);
  void emit_probe(NodeId node);
  [[nodiscard]] ProbeRecord to_record(const ProbeOutcome& outcome);

  OverlayNetwork& overlay_;
  Scheduler& sched_;
  Aggregator& agg_;
  DriverConfig cfg_;
  Rng rng_;
  MultipathSender sender_;
  std::vector<Duration> clock_offsets_;
  std::vector<std::size_t> scheme_cursor_;  // per node
  std::int64_t probes_ = 0;
  bool started_ = false;
};

}  // namespace ronpath

#endif  // RONPATH_CORE_DRIVER_H_
