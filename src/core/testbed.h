// The RON testbed host catalog (Tables 1 and 2 of the paper).
//
// Host names, locations and access classes follow Table 1; coordinates
// are the named cities' and drive the propagation-delay model. The 2002
// testbed is the 17-host subset used by the RONwide/RONnarrow datasets
// (Table 1 prints these in bold; the exact bold set does not survive
// text extraction, so the subset here is reconstructed from the RON
// project's 2002 deployments and documented as an approximation).

#ifndef RONPATH_CORE_TESTBED_H_
#define RONPATH_CORE_TESTBED_H_

#include <string>
#include <vector>

#include "net/topology.h"

namespace ronpath {

// The full 30-host 2003 testbed.
[[nodiscard]] Topology testbed_2003();

// The 17-host 2002 testbed subset.
[[nodiscard]] Topology testbed_2002();

// Table 2: distribution of testbed nodes over categories.
struct CategoryCount {
  std::string category;
  int count = 0;
};
[[nodiscard]] std::vector<CategoryCount> table2_categories(const Topology& topo);

// Table 1 helper: true if the site is a US university on Internet2.
[[nodiscard]] bool is_internet2(const Site& site);

}  // namespace ronpath

#endif  // RONPATH_CORE_TESTBED_H_
