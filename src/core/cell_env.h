// Shared construction of a single-cell simulated world.
//
// Three consumers run "one (scenario, scheme) cell as its own fresh
// simulation": core/fault_matrix.cc's run_fault_cell, the resumable
// snapshot/world.h SimWorld, and the workload layer's WorkloadWorld.
// Their construction sequences must be *identical* — same topology
// derivation, same RNG fork order ("net", "overlay", "hybrid"), same
// overlay knobs — or fixed-seed outputs drift apart. CellEnv is that
// sequence, extracted once; the differential tests that previously
// pinned run_fault_cell against SimWorld now pin a single code path.
//
// Member order doubles as teardown order (reverse declaration):
// sender -> overlay -> advance -> net -> sched -> injector -> topo, so
// the AdvanceService's worker threads stop before the Network they feed
// is destroyed.

#ifndef RONPATH_CORE_CELL_ENV_H_
#define RONPATH_CORE_CELL_ENV_H_

#include <cstdint>
#include <optional>

#include "core/fault_matrix.h"
#include "event/scheduler.h"
#include "fault/injector.h"
#include "fault/scenarios.h"
#include "net/network.h"
#include "overlay/overlay.h"
#include "pdes/advance.h"
#include "routing/hybrid.h"

namespace ronpath {

struct CellEnv {
  // Builds the world in run_fault_cell's historical order. Throws
  // std::runtime_error when the scenario DSL does not parse and
  // std::invalid_argument on incompatible config (lazy + sharded).
  // `mode` picks the HybridSender policy; the sender is constructed
  // (and its RNG stream forked) in every mode so schemes that never
  // touch it still see identical randomness everywhere else.
  CellEnv(const Scenario& scenario, HybridMode mode, const FaultMatrixConfig& cfg,
          std::uint64_t seed);

  Topology topo;
  std::optional<FaultInjector> injector;
  Scheduler sched;
  std::optional<Network> net;
  // Declared after net: its worker threads must stop first on teardown.
  std::optional<pdes::AdvanceService> advance;
  std::optional<OverlayNetwork> overlay;
  std::optional<HybridSender> sender;
};

}  // namespace ronpath

#endif  // RONPATH_CORE_CELL_ENV_H_
