// Experiment runner: reproduces the paper's three datasets (Table 3).
//
//   RON2003   - 30 hosts, 2003 profile, one-way probes, six probe sets
//               (direct/lat rows inferred from first copies);
//   RONwide   - 17 hosts, 2002 profile, round-trip probes, the expanded
//               12-method set of Table 7;
//   RONnarrow - 17 hosts, 2002 profile, one-way probes, the three most
//               promising methods.
//
// A run wires together: the testbed topology, the calibrated underlay
// profile, the overlay (RON-style probing + routing), the measurement
// probe driver, and the streaming aggregator; it returns the finished
// aggregator from which every table and figure is extracted.

#ifndef RONPATH_CORE_EXPERIMENT_H_
#define RONPATH_CORE_EXPERIMENT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "measure/aggregator.h"
#include "net/network.h"

namespace ronpath {

enum class Dataset {
  kRon2003,
  kRonWide,
  kRonNarrow,
};

[[nodiscard]] std::string_view to_string(Dataset d);

struct ExperimentConfig {
  Dataset dataset = Dataset::kRon2003;
  // Measured duration after warm-up. The paper's RON2003 spans 14 days;
  // benches default shorter and accept a --days flag.
  Duration duration = Duration::days(2);
  // Overlay probing warm-up before records count (the loss window needs
  // ~100 probes at 15 s).
  Duration warmup = Duration::minutes(40);
  std::uint64_t seed = 42;
  // Optional underlay overrides for calibration/ablation.
  std::optional<double> loss_scale;
  std::optional<Duration> probe_interval;
  std::optional<double> host_failures_per_month;
  // Score link loss with an EWMA instead of the paper's last-100 window.
  bool use_ewma_loss = false;
  // Ablation hooks.
  bool disable_incidents = false;
  std::optional<double> provider_cross_fraction;
  // Use only the first N testbed hosts (overlay size scaling ablation).
  std::optional<std::size_t> node_count;
  // When set, every probe record is streamed to this file (rondata
  // format; see tools/rondata.cc).
  std::string record_path;
  // Optional scripted fault schedule (fault DSL text; see src/fault/),
  // overlaid on the run via a FaultInjector. Invalid DSL throws.
  std::string fault_dsl;
  // Enables the router's staleness expiry + hold-down knobs (DESIGN.md,
  // "Fault model"); off reproduces the trust-forever control plane.
  bool graceful_degradation = false;
  // Maximum overlay relays the reactive router may chain (path-engine
  // rounds). 1 reproduces the paper's one-intermediate router; 2 lets
  // route() pick two-relay chains. Values outside [1, 2] are rejected
  // (the forwarding plane carries at most two relays).
  int path_depth = 1;
  // > 0: sharded underlay discipline (per-component RNG substreams +
  // quantized advance service; DESIGN.md §13). Output is byte-identical
  // at any positive value; 0 (default) keeps the legacy single-stream
  // discipline and the historical golden tables.
  int shards = 0;

  // --- scaling (DESIGN.md §14) ---
  // > 0: replace the testbed topology with a synthetic hierarchical
  // underlay of this many sites (net/scale_topology.h, seeded by `seed`).
  // Ignores node_count.
  std::size_t synth_nodes = 0;
  // > 0: bandwidth-capped overlay (k-nearest neighbor graph, rotated
  // announcements, landmark alternates). 0 keeps the full mesh.
  std::size_t overlay_fanout = 0;
  std::size_t overlay_landmarks = 8;
  // Materialize underlay core components on first traversal (required
  // headroom at 1000+ nodes; incompatible with shards > 0).
  bool lazy_underlay = false;
};

struct ExperimentResult {
  std::unique_ptr<Aggregator> agg;  // finished
  Topology topology;
  Network::Stats net_stats;
  std::int64_t probes = 0;
  std::int64_t overlay_probes = 0;
  std::uint64_t events = 0;
  Duration measured;  // duration excluding warm-up
};

[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& cfg);

}  // namespace ronpath

#endif  // RONPATH_CORE_EXPERIMENT_H_
