// Fault matrix: every routing scheme through every canonical fault
// scenario, with per-phase loss, failover and recovery times.
//
// One cell = one (scenario, scheme, trial) triple run as its own fresh
// simulation: topology subset, calibrated underlay (organic incidents
// and host failures disabled so only the scripted fault perturbs the
// run), RON overlay with graceful degradation enabled, plus the
// scenario's FaultInjector. A CBR flow src=0 -> dst=1 is sampled every
// send_interval; the delivery timeline yields:
//
//   loss pre/fault/post - loss rate before / during / after the fault
//                         window;
//   failover            - fault start -> first K-consecutive-delivery
//                         streak after the first fault-window loss
//                         (0 when the scheme never lost a packet);
//   recovery            - fault end -> first K-streak at/after it.
//
// Determinism: a cell is a pure function of (scenario, scheme, seed,
// config); trial i runs under trial_seed(seed, i) (core/trials.h), and
// format_fault_matrix renders with fixed precision, so the same seed and
// schedule produce a byte-identical report at any --jobs value.

#ifndef RONPATH_CORE_FAULT_MATRIX_H_
#define RONPATH_CORE_FAULT_MATRIX_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fault/scenarios.h"
#include "measure/cross_trial.h"
#include "util/time.h"

namespace ronpath {

// The routing schemes compared in the matrix (Table 4 tactics plus the
// Section 5.3 hybrids).
enum class FaultScheme : std::uint8_t {
  kDirect,    // always the direct Internet path
  kReactive,  // loss-optimized best path (pure reactive)
  kMesh,      // duplicate on disjoint paths (pure redundancy, 2x)
  kHybrid,    // adaptive duplication (reactive + redundancy)
};

[[nodiscard]] std::string_view to_string(FaultScheme scheme);
[[nodiscard]] std::span<const FaultScheme> all_fault_schemes();

struct FaultMatrixConfig {
  // First node_count hosts of the 2003 testbed (node 0 = source,
  // 1 = destination, 2.. = candidate vias, matching the scenarios).
  std::size_t node_count = 12;
  std::uint64_t seed = 42;
  Duration warmup = Duration::minutes(30);
  Duration measured = Duration::minutes(25);
  Duration send_interval = Duration::millis(100);
  // Consecutive deliveries that count as "stable" for failover/recovery.
  int stable_streak = 5;
  // Enables the router's staleness + hold-down knobs (see DESIGN.md,
  // "Fault model"). Off reproduces the trust-forever control plane.
  bool graceful_degradation = true;
  // > 0: run the underlay in sharded mode (per-component RNG substreams
  // + the quantized advance service with this many generation shards;
  // DESIGN.md §13). Reports are byte-identical for ANY positive value —
  // 1, 2, 4 and 8 shards all produce the same cell — but differ from the
  // legacy (0) discipline, which stays the default so existing golden
  // tables are untouched.
  int shards = 0;

  // --- scaling (DESIGN.md §14) ---
  // > 0: run the cell on a synthetic hierarchical topology of this many
  // sites (net/scale_topology.h) instead of the testbed subset.
  std::size_t synth_nodes = 0;
  // > 0: bandwidth-capped overlay (k-nearest graph + rotated
  // announcements + landmarks); 0 keeps the full mesh.
  std::size_t overlay_fanout = 0;
  std::size_t overlay_landmarks = 8;
  // Materialize underlay cores on first traversal (scale runs only;
  // incompatible with shards > 0).
  bool lazy_underlay = false;
};

// One (scenario, scheme) cell from a single trial.
struct FaultCell {
  double loss_pre_pct = 0.0;
  double loss_fault_pct = 0.0;
  double loss_post_pct = 0.0;
  bool failover_measured = false;  // a stable streak was found
  double failover_s = 0.0;
  bool recovery_measured = false;
  double recovery_s = 0.0;
  double overhead = 1.0;               // copies per application packet
  std::int64_t route_switches = 0;     // src's loss-objective switches to dst
  std::int64_t injected_drops = 0;     // underlay drops charged to the fault
  // Overlapping fault windows coalesced when the scenario was compiled
  // (0 for all canonical scenarios; see FaultInjector::merged_window_count).
  std::int64_t merged_fault_windows = 0;
};

// Runs one cell; pure function of its arguments (see header comment).
[[nodiscard]] FaultCell run_fault_cell(const Scenario& scenario, FaultScheme scheme,
                                       const FaultMatrixConfig& cfg, std::uint64_t seed);

// The analysis half of run_fault_cell: turns a CBR delivery timeline
// (one sample per send_interval from warmup end) into the per-phase loss
// rates and failover/recovery times. Shared with the snapshot/soak
// harness, whose restored runs must reproduce run_fault_cell's numbers
// bit for bit. The accounting fields (overhead, route_switches,
// injected_drops, merged_fault_windows) are left at their defaults.
[[nodiscard]] FaultCell analyze_fault_cell(const Scenario& scenario, const FaultMatrixConfig& cfg,
                                           const std::vector<bool>& delivered);

struct FaultCellSummary {
  std::string scenario;
  FaultScheme scheme = FaultScheme::kDirect;
  MetricSummary loss_pre_pct;
  MetricSummary loss_fault_pct;
  MetricSummary loss_post_pct;
  MetricSummary failover_s;  // over trials where a streak was found
  MetricSummary recovery_s;
  MetricSummary overhead;
  std::int64_t route_switches = 0;  // trial-0 value (deterministic pin)
  std::int64_t injected_drops = 0;
  std::int64_t merged_fault_windows = 0;
  std::vector<FaultCell> trials;  // index == trial
};

struct FaultMatrixResult {
  FaultMatrixConfig cfg;
  int n_trials = 1;
  // Scenario-major, scheme-minor, in canonical order.
  std::vector<FaultCellSummary> cells;
};

// Runs the full matrix over `scenarios` with `n_trials` realizations per
// cell, sharded across up to `n_jobs` threads. Results are stored by
// (scenario, scheme, trial) index, never by completion order.
[[nodiscard]] FaultMatrixResult run_fault_matrix(const FaultMatrixConfig& cfg,
                                                 std::span<const Scenario> scenarios,
                                                 int n_trials, int n_jobs);

// Deterministic text report: per-scenario DSL echo plus the scheme table.
[[nodiscard]] std::string format_fault_matrix(const FaultMatrixResult& result,
                                              std::span<const Scenario> scenarios);

}  // namespace ronpath

#endif  // RONPATH_CORE_FAULT_MATRIX_H_
