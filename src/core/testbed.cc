#include "core/testbed.h"

#include <algorithm>
#include <cassert>

namespace ronpath {
namespace {

struct HostDef {
  const char* name;
  const char* location;
  LinkClass link_class;
  double lat;
  double lon;
  bool in_2002;
};

// Table 1, with city coordinates. Class assignment reconciles Table 1's
// descriptions with Table 2's category counts (7 US universities, 4 large
// ISPs, 5 small/medium ISPs, 5 US companies, 3 cable/DSL, 1 Canadian
// company, 3 international universities, 2 international ISPs).
constexpr HostDef kHosts[] = {
    {"Aros", "Salt Lake City, UT", LinkClass::kSmallIsp, 40.76, -111.89, true},
    {"AT&T", "Florham Park, NJ", LinkClass::kLargeIsp, 40.79, -74.38, false},
    {"CA-DSL", "Foster City, CA", LinkClass::kCableDsl, 37.56, -122.27, true},
    {"CCI", "Salt Lake City, UT", LinkClass::kCompany, 40.76, -111.89, true},
    {"CMU", "Pittsburgh, PA", LinkClass::kUniversityI2, 40.44, -79.94, true},
    {"Coloco", "Laurel, MD", LinkClass::kCompany, 39.10, -76.85, false},
    {"Cornell", "Ithaca, NY", LinkClass::kUniversityI2, 42.45, -76.48, true},
    {"Cybermesa", "Santa Fe, NM", LinkClass::kSmallIsp, 35.69, -105.94, false},
    {"Digitalwest", "San Luis Obispo, CA", LinkClass::kSmallIsp, 35.28, -120.66, false},
    {"GBLX-AMS", "Amsterdam, Netherlands", LinkClass::kIntlIsp, 52.37, 4.90, false},
    {"GBLX-ANA", "Anaheim, CA", LinkClass::kLargeIsp, 33.84, -117.91, false},
    {"GBLX-CHI", "Chicago, IL", LinkClass::kLargeIsp, 41.88, -87.63, false},
    {"GBLX-JFK", "New York City, NY", LinkClass::kLargeIsp, 40.64, -73.78, false},
    {"GBLX-LON", "London, England", LinkClass::kIntlIsp, 51.51, -0.13, false},
    {"Intel", "Palo Alto, CA", LinkClass::kCompany, 37.44, -122.14, false},
    {"Korea", "KAIST, Korea", LinkClass::kIntlUniversity, 36.37, 127.36, true},
    {"Lulea", "Lulea, Sweden", LinkClass::kIntlUniversity, 65.58, 22.15, true},
    {"MA-Cable", "Cambridge, MA", LinkClass::kCableDsl, 42.37, -71.11, true},
    {"Mazu", "Boston, MA", LinkClass::kCompany, 42.36, -71.06, true},
    {"MIT", "Cambridge, MA", LinkClass::kUniversityI2, 42.36, -71.09, true},
    {"MIT-main", "Cambridge, MA", LinkClass::kUniversity, 42.36, -71.09, false},
    {"NC-Cable", "Durham, NC", LinkClass::kCableDsl, 35.99, -78.90, true},
    {"Nortel", "Toronto, Canada", LinkClass::kCompany, 43.65, -79.38, true},
    {"NYU", "New York, NY", LinkClass::kUniversityI2, 40.73, -73.99, true},
    {"PDI", "Palo Alto, CA", LinkClass::kCompany, 37.44, -122.14, true},
    {"PSG", "Bainbridge Island, WA", LinkClass::kSmallIsp, 47.63, -122.52, true},
    {"UCSD", "San Diego, CA", LinkClass::kUniversityI2, 32.88, -117.23, false},
    {"Utah", "Salt Lake City, UT", LinkClass::kUniversityI2, 40.76, -111.84, true},
    {"Vineyard", "Cambridge, MA", LinkClass::kSmallIsp, 42.37, -71.10, false},
    {"VU-NL", "Amsterdam, Netherlands", LinkClass::kIntlUniversity, 52.33, 4.86, true},
};

Site make_site(const HostDef& h) {
  Site s;
  s.name = h.name;
  s.location = h.location;
  s.link_class = h.link_class;
  s.lat_deg = h.lat;
  s.lon_deg = h.lon;
  s.in_2002_testbed = h.in_2002;
  return s;
}

bool is_canadian(const Site& s) { return s.location.find("Canada") != std::string::npos; }

}  // namespace

Topology testbed_2003() {
  std::vector<Site> sites;
  sites.reserve(std::size(kHosts));
  for (const auto& h : kHosts) sites.push_back(make_site(h));
  assert(sites.size() == 30);
  return Topology(std::move(sites));
}

Topology testbed_2002() {
  std::vector<Site> sites;
  for (const auto& h : kHosts) {
    if (h.in_2002) sites.push_back(make_site(h));
  }
  assert(sites.size() == 17);
  return Topology(std::move(sites));
}

bool is_internet2(const Site& site) { return site.link_class == LinkClass::kUniversityI2; }

std::vector<CategoryCount> table2_categories(const Topology& topo) {
  std::vector<CategoryCount> cats = {
      {"US Universities", 0},        {"US Large ISP", 0},
      {"US small/med ISP", 0},       {"US Private Company", 0},
      {"US Cable/DSL", 0},           {"Canada Private Company", 0},
      {"Int'l Universities", 0},     {"Int'l ISP", 0},
  };
  for (const Site& s : topo.sites()) {
    switch (s.link_class) {
      case LinkClass::kUniversityI2:
      case LinkClass::kUniversity:
        ++cats[0].count;
        break;
      case LinkClass::kLargeIsp:
        ++cats[1].count;
        break;
      case LinkClass::kSmallIsp:
        ++cats[2].count;
        break;
      case LinkClass::kCompany:
        ++(is_canadian(s) ? cats[5] : cats[3]).count;
        break;
      case LinkClass::kCableDsl:
        ++cats[4].count;
        break;
      case LinkClass::kIntlUniversity:
        ++cats[6].count;
        break;
      case LinkClass::kIntlIsp:
        ++cats[7].count;
        break;
    }
  }
  return cats;
}

}  // namespace ronpath
