#include "core/cell_env.h"

#include <cassert>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/testbed.h"
#include "net/config.h"
#include "net/scale_topology.h"

namespace ronpath {
namespace {

Topology cell_topology(const FaultMatrixConfig& cfg) {
  if (cfg.lazy_underlay && cfg.shards > 0) {
    throw std::invalid_argument("lazy_underlay is incompatible with sharded execution");
  }
  if (cfg.synth_nodes > 0) {
    ScaleTopologyParams params;
    params.nodes = cfg.synth_nodes;
    params.seed = cfg.seed;
    return scale_topology(params);
  }
  Topology t = testbed_2003();
  assert(cfg.node_count >= 2);
  if (cfg.node_count < t.size()) {
    std::vector<Site> subset(t.sites().begin(),
                             t.sites().begin() + static_cast<long>(cfg.node_count));
    t = Topology(std::move(subset));
  }
  return t;
}

}  // namespace

CellEnv::CellEnv(const Scenario& scenario, HybridMode mode, const FaultMatrixConfig& cfg,
                 std::uint64_t seed)
    : topo(cell_topology(cfg)) {
  const Duration run_span = cfg.warmup + cfg.measured;
  NetConfig net_cfg = NetConfig::profile_2003(run_span);
  // Only the scripted fault may perturb the run: organic incidents and
  // host failures would smear the failover/recovery measurements.
  net_cfg.incidents.clear();
  net_cfg.lazy_components = cfg.lazy_underlay;

  std::string parse_error;
  const auto schedule = FaultSchedule::parse(scenario.dsl, &parse_error);
  if (!schedule) {
    throw std::runtime_error("scenario '" + std::string(scenario.name) + "': " + parse_error);
  }
  injector.emplace(*schedule, topo, run_span + Duration::hours(1));

  Rng rng(seed);
  net.emplace(topo, net_cfg, run_span + Duration::hours(1), rng.fork("net"));

  // Sharded underlay (cfg.shards > 0): per-component RNG substreams plus
  // the quantized advance service. The cell is byte-identical at any
  // positive shard count (see FaultMatrixConfig::shards).
  if (cfg.shards > 0) {
    net->enable_sharded_underlay();
    advance.emplace(*net, pdes::ShardPlan::build(*net, cfg.shards));
    net->set_advance_hook(&*advance);
  }

  OverlayConfig ocfg;
  ocfg.router.forward_delay = net_cfg.forward_delay;
  ocfg.host_failures_per_month = 0.0;
  ocfg.fanout = cfg.overlay_fanout;
  ocfg.landmarks = cfg.overlay_landmarks;
  if (cfg.graceful_degradation) {
    // Entries expire after five missed publications; flapping vias serve
    // a doubling hold-down starting at two probe intervals.
    ocfg.router.entry_ttl = ocfg.probe_interval * 5;
    ocfg.router.holddown_base = ocfg.probe_interval * 2;
  }
  overlay.emplace(*net, sched, ocfg, rng.fork("overlay"));
  overlay->set_fault_injector(&*injector);
  overlay->start();

  HybridConfig hcfg;
  hcfg.mode = mode;
  sender.emplace(*overlay, hcfg, rng.fork("hybrid"));
}

}  // namespace ronpath
