#include "core/driver.h"

#include <cassert>

namespace ronpath {

ProbeDriver::ProbeDriver(OverlayNetwork& overlay, Scheduler& sched, Aggregator& agg,
                         DriverConfig cfg, Rng rng)
    : overlay_(overlay),
      sched_(sched),
      agg_(agg),
      cfg_(std::move(cfg)),
      rng_(rng.fork("driver")),
      sender_(overlay, rng.fork("sender")) {
  assert(!cfg_.probe_set.empty());
  const std::size_t n = overlay_.size();
  clock_offsets_.assign(n, Duration::zero());
  Rng clock_rng = rng_.fork("clocks");
  for (NodeId i = 0; i < n; ++i) {
    if (clock_rng.next_double() < cfg_.non_gps_fraction) {
      clock_offsets_[i] =
          Duration::from_millis_f(clock_rng.normal(0.0, cfg_.clock_offset_sigma_ms));
    }
  }
  scheme_cursor_.assign(n, 0);
  // Stagger cursors so schemes are probed uniformly across nodes even in
  // short runs.
  for (NodeId i = 0; i < n; ++i) scheme_cursor_[i] = i % cfg_.probe_set.size();
}

void ProbeDriver::start() {
  if (started_) return;
  started_ = true;
  for (NodeId node = 0; node < overlay_.size(); ++node) {
    const Duration offset = rng_.fork("start").fork(node).uniform_duration(
        Duration::zero(), cfg_.max_gap);
    sched_.schedule_after(offset, [this, node] { node_tick(node); });
  }
}

void ProbeDriver::node_tick(NodeId node) {
  if (overlay_.node_up(node, sched_.now())) {
    emit_probe(node);
  }
  // "the host waits for a random amount of time between 0.6 and 1.2
  // seconds, and then repeats the process" - failed hosts keep ticking
  // silently and resume probing when they come back.
  sched_.schedule_after(rng_.uniform_duration(cfg_.min_gap, cfg_.max_gap),
                        [this, node] { node_tick(node); });
}

void ProbeDriver::emit_probe(NodeId node) {
  const TimePoint now = sched_.now();
  agg_.note_activity(node, now);

  // Cycle probe types; pick a random destination.
  const PairScheme scheme = cfg_.probe_set[scheme_cursor_[node] % cfg_.probe_set.size()];
  ++scheme_cursor_[node];
  const auto n = static_cast<NodeId>(overlay_.size());
  NodeId dst = node;
  while (dst == node) dst = static_cast<NodeId>(rng_.next_below(n));

  ProbeOutcome outcome = sender_.send(scheme, node, dst, now);
  ++probes_;
  const ProbeRecord rec = to_record(outcome);
  if (cfg_.record_tee) cfg_.record_tee(rec);
  agg_.add(rec);
}

ProbeRecord ProbeDriver::to_record(const ProbeOutcome& outcome) {
  ProbeRecord rec;
  rec.scheme = outcome.scheme;
  rec.src = outcome.src;
  rec.dst = outcome.dst;
  rec.probe_id = outcome.probe_id;
  rec.copy_count = static_cast<std::uint8_t>(outcome.copies.size());
  for (std::size_t i = 0; i < outcome.copies.size(); ++i) {
    const CopyOutcome& c = outcome.copies[i];
    CopyRecord& r = rec.copies[i];
    r.tag = c.tag;
    r.via = c.path.via;
    r.sent = c.sent;
    r.delivered = c.delivered();
    r.cause = c.result.net.cause;
    r.host_drop = !c.result.via_up || (c.result.net.delivered && !c.result.dst_up);

    if (!r.delivered) continue;
    if (cfg_.round_trip) {
      // Echo the copy back along the reverse of its path; the copy counts
      // only if the echo returns, and its latency is the full RTT.
      const PathSpec reverse{c.path.dst, c.path.src, c.path.via};
      const OverlaySendResult echo = overlay_.send(reverse, c.arrival());
      if (!echo.delivered()) {
        r.delivered = false;
        r.cause = echo.net.cause;
        r.host_drop = !echo.via_up || (echo.net.delivered && !echo.dst_up);
        continue;
      }
      r.latency = c.one_way() + echo.net.latency;
    } else {
      // One-way delay as measured against the receiving host's clock.
      r.latency = c.one_way() + clock_offsets_[outcome.dst] - clock_offsets_[outcome.src];
    }
  }
  return rec;
}

}  // namespace ronpath
