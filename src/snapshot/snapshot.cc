#include "snapshot/snapshot.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace ronpath::snap {
namespace {

constexpr char kMagic[8] = {'R', 'O', 'N', 'P', 'S', 'N', 'A', 'P'};

void put_u32(std::vector<std::uint8_t>& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::vector<std::uint8_t> seal(std::uint64_t fingerprint,
                               const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kSnapshotHeaderBytes + payload.size() + 8);
  out.insert(out.end(), kMagic, kMagic + sizeof kMagic);
  put_u32(out, kSnapshotVersion);
  put_u64(out, fingerprint);
  put_u64(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  put_u64(out, crc64(out.data(), out.size()));
  return out;
}

std::vector<std::uint8_t> unseal(const std::vector<std::uint8_t>& file,
                                 std::uint64_t expected_fingerprint) {
  if (file.size() < kSnapshotMinBytes) {
    throw SnapshotError("snapshot: file truncated (" + std::to_string(file.size()) +
                        " byte(s), a valid snapshot needs at least " +
                        std::to_string(kSnapshotMinBytes) + ")");
  }
  if (std::memcmp(file.data(), kMagic, sizeof kMagic) != 0) {
    throw SnapshotError("snapshot: bad magic — not a snapshot file");
  }
  const std::uint32_t version = get_u32(file.data() + 8);
  if (version != kSnapshotVersion) {
    throw SnapshotError("snapshot: unsupported format version " + std::to_string(version) +
                        " (this build reads version " + std::to_string(kSnapshotVersion) + ")");
  }
  const std::uint64_t fingerprint = get_u64(file.data() + 12);
  const std::uint64_t payload_len = get_u64(file.data() + 20);
  if (payload_len != file.size() - kSnapshotMinBytes) {
    throw SnapshotError("snapshot: payload length field says " + std::to_string(payload_len) +
                        " byte(s) but the file carries " +
                        std::to_string(file.size() - kSnapshotMinBytes));
  }
  // Checksum before the fingerprint check: a corrupted fingerprint field
  // should be reported as corruption, not as a config mismatch.
  const std::size_t body = file.size() - 8;
  const std::uint64_t want_crc = get_u64(file.data() + body);
  const std::uint64_t got_crc = crc64(file.data(), body);
  if (want_crc != got_crc) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "stored %016llx, computed %016llx",
                  static_cast<unsigned long long>(want_crc),
                  static_cast<unsigned long long>(got_crc));
    throw SnapshotError(std::string("snapshot: checksum mismatch (") + buf +
                        ") — file is corrupted");
  }
  if (fingerprint != expected_fingerprint) {
    throw SnapshotError(
        "snapshot: context fingerprint mismatch — this snapshot was taken from a "
        "different scenario, scheme, configuration or seed");
  }
  return {file.begin() + static_cast<std::ptrdiff_t>(kSnapshotHeaderBytes),
          file.begin() + static_cast<std::ptrdiff_t>(body)};
}

void write_file(const std::string& path, std::uint64_t fingerprint,
                const std::vector<std::uint8_t>& payload) {
  const std::vector<std::uint8_t> sealed = seal(fingerprint, payload);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    throw SnapshotError("snapshot: cannot open '" + path + "' for writing: " +
                        std::strerror(errno));
  }
  const std::size_t written = std::fwrite(sealed.data(), 1, sealed.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != sealed.size() || !flushed) {
    throw SnapshotError("snapshot: short write to '" + path + "'");
  }
}

std::vector<std::uint8_t> read_file(const std::string& path,
                                    std::uint64_t expected_fingerprint) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    throw SnapshotError("snapshot: cannot open '" + path + "' for reading: " +
                        std::strerror(errno));
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    throw SnapshotError("snapshot: read error on '" + path + "'");
  }
  return unseal(bytes, expected_fingerprint);
}

}  // namespace ronpath::snap
