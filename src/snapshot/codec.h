// Byte-level encoder/decoder for the snapshot subsystem.
//
// Header-only on purpose: every layer that owns mutable simulation state
// (event, net, overlay, routing) gains save_state()/restore_state()
// methods taking these types, and a header-only codec means none of those
// libraries grows a link dependency on the snapshot library — only the
// snapshot library itself (world/audit/file I/O) links against core.
//
// Wire rules:
//   * little-endian fixed-width integers (memcpy on the LE targets we
//     build for; bytes are written explicitly so big-endian would still
//     round-trip with itself);
//   * doubles as their IEEE-754 bit pattern (bit_cast), so restoring is
//     bit-exact — a requirement, since the simulation must continue
//     byte-identically;
//   * Duration/TimePoint as int64 nanoseconds;
//   * strings and blobs length-prefixed with u64;
//   * every logical section starts with a 4-char tag, checked on decode,
//     so a truncated or corrupted stream fails with a located diagnostic
//     instead of silently misreading trailing state.
//
// The Decoder bounds-checks every read and throws SnapshotError; it never
// reads out of bounds, so corrupted input is rejected, not UB.

#ifndef RONPATH_SNAPSHOT_CODEC_H_
#define RONPATH_SNAPSHOT_CODEC_H_

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"
#include "util/time.h"

namespace ronpath::snap {

class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what) : std::runtime_error(what) {}
};

class Encoder {
 public:
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void b(bool v) { u8(v ? 1 : 0); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void duration(Duration d) { i64(d.count_nanos()); }
  void time(TimePoint t) { i64(t.since_epoch().count_nanos()); }
  void str(std::string_view s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  // Section tag: exactly four characters, checked on decode.
  void tag(const char (&t)[5]) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(t[i]));
  }

 private:
  std::vector<std::uint8_t> buf_;
};

class Decoder {
 public:
  Decoder(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit Decoder(const std::vector<std::uint8_t>& bytes)
      : Decoder(bytes.data(), bytes.size()) {}

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] bool done() const { return pos_ == size_; }

  std::uint8_t u8() {
    need(1, "u8");
    return data_[pos_++];
  }
  bool b() {
    const std::uint8_t v = u8();
    if (v > 1) throw SnapshotError("snapshot: bool byte out of range at offset " + at(1));
    return v == 1;
  }
  std::uint32_t u32() {
    need(4, "u32");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8, "u64");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  Duration duration() { return Duration::nanos(i64()); }
  TimePoint time() { return TimePoint::from_nanos(i64()); }
  std::string str() {
    const std::uint64_t len = u64();
    need(len, "string body");
    std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return s;
  }
  // Length-checked count prefix for a container whose elements need at
  // least `min_elem_bytes` each — rejects absurd counts from corrupted
  // streams before any allocation.
  std::uint64_t count(std::size_t min_elem_bytes) {
    const std::uint64_t n = u64();
    if (min_elem_bytes > 0 && n > remaining() / min_elem_bytes) {
      throw SnapshotError("snapshot: element count " + std::to_string(n) +
                          " exceeds remaining payload at offset " + at(8));
    }
    return n;
  }
  void expect_tag(const char (&t)[5]) {
    need(4, "section tag");
    if (std::memcmp(data_ + pos_, t, 4) != 0) {
      std::string got(reinterpret_cast<const char*>(data_ + pos_), 4);
      for (char& c : got) {
        if (c < 0x20 || c > 0x7e) c = '?';
      }
      pos_ += 4;
      throw SnapshotError("snapshot: section tag mismatch at offset " + at(4) + ": expected \"" +
                          t + "\", got \"" + got + "\"");
    }
    pos_ += 4;
  }
  void expect_done() const {
    if (!done()) {
      throw SnapshotError("snapshot: " + std::to_string(remaining()) +
                          " unconsumed trailing byte(s)");
    }
  }

 private:
  void need(std::uint64_t n, const char* what) const {
    if (n > remaining()) {
      throw SnapshotError("snapshot: truncated payload reading " + std::string(what) +
                          " at offset " + std::to_string(pos_) + " (need " + std::to_string(n) +
                          " byte(s), have " + std::to_string(remaining()) + ")");
    }
  }
  [[nodiscard]] std::string at(std::size_t width) const { return std::to_string(pos_ - width); }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// Rng stream state, shared by every layer's save/restore code.
inline void save_rng(Encoder& e, const Rng& rng) {
  const Rng::State st = rng.save_state();
  for (const std::uint64_t w : st.s) e.u64(w);
  e.f64(st.spare_normal);
  e.b(st.has_spare_normal);
}
inline void restore_rng(Decoder& d, Rng& rng) {
  Rng::State st;
  for (std::uint64_t& w : st.s) w = d.u64();
  st.spare_normal = d.f64();
  st.has_spare_normal = d.b();
  rng.restore_state(st);
}

// CRC-64/XZ (reflected, poly 0x42F0E1EBA9EA3693), used as the snapshot
// file checksum. Table built once, lazily.
inline std::uint64_t crc64(const std::uint8_t* data, std::size_t size,
                           std::uint64_t crc = 0) {
  static const std::array<std::uint64_t, 256> table = [] {
    std::array<std::uint64_t, 256> t{};
    for (std::uint64_t i = 0; i < 256; ++i) {
      std::uint64_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? (c >> 1) ^ 0xC96C5795D7870F42ull : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  crc = ~crc;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

// FNV-1a over a byte string; used for configuration fingerprints.
inline std::uint64_t fnv1a(std::string_view s, std::uint64_t h = 0xcbf29ce484222325ull) {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}
inline std::uint64_t fnv1a_u64(std::uint64_t v, std::uint64_t h) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace ronpath::snap

#endif  // RONPATH_SNAPSHOT_CODEC_H_
