// Snapshot file envelope: versioned, checksummed container for a
// serialized simulation payload.
//
// Layout (all little-endian):
//
//   offset  size  field
//        0     8  magic "RONPSNAP"
//        8     4  format version (currently 4: WKLD workload sections —
//                 traffic cursor, FEC block state, access buckets, loss
//                 EWMAs, per-pair controllers, per-class sketches)
//       12     8  context fingerprint (FNV-1a over scenario/scheme/
//                 config/seed; see SimWorld::fingerprint)
//       20     8  payload length in bytes
//       28     n  payload (codec.h sections)
//     28+n     8  CRC-64/XZ over bytes [0, 28+n)
//
// Versioning policy: the version bumps on ANY change to the payload
// encoding (section order, field widths, new sections) — there is no
// in-place migration, because a snapshot is only ever restored into a
// binary built from the same source tree. Old snapshots are rejected
// with a clear diagnostic rather than misread.
//
// Every failure mode (truncation, bad magic, version skew, checksum
// mismatch, fingerprint mismatch) throws snap::SnapshotError with a
// specific message; unseal never reads out of bounds on corrupted input.

#ifndef RONPATH_SNAPSHOT_SNAPSHOT_H_
#define RONPATH_SNAPSHOT_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "snapshot/codec.h"

namespace ronpath::snap {

inline constexpr std::uint32_t kSnapshotVersion = 4;
inline constexpr std::size_t kSnapshotHeaderBytes = 28;
inline constexpr std::size_t kSnapshotMinBytes = kSnapshotHeaderBytes + 8;

// Wraps a payload in the envelope above.
[[nodiscard]] std::vector<std::uint8_t> seal(std::uint64_t fingerprint,
                                             const std::vector<std::uint8_t>& payload);

// Validates the envelope and returns the payload. `expected_fingerprint`
// guards against restoring a snapshot into a differently-configured
// world. Throws SnapshotError on any problem.
[[nodiscard]] std::vector<std::uint8_t> unseal(const std::vector<std::uint8_t>& file,
                                               std::uint64_t expected_fingerprint);

// File variants. write_file throws SnapshotError when the path is not
// writable; read_file when it is missing, unreadable, or fails unseal.
void write_file(const std::string& path, std::uint64_t fingerprint,
                const std::vector<std::uint8_t>& payload);
[[nodiscard]] std::vector<std::uint8_t> read_file(const std::string& path,
                                                  std::uint64_t expected_fingerprint);

}  // namespace ronpath::snap

#endif  // RONPATH_SNAPSHOT_SNAPSHOT_H_
