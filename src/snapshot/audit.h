// Runtime invariant auditor for the snapshot/soak subsystem.
//
// Aggregates every layer's check_invariants() over a SimWorld into one
// pass/fail verdict. The audited invariants (see DESIGN.md, "Snapshot &
// soak"):
//
//   scheduler  - heap property holds; no entry behind the clock; slot /
//                generation consistency; sequence numbers below next_seq
//   net        - loss-process interval rings sorted/merged/non-empty;
//                roughly-monotone cursors never behind their prune
//                watermark; drop statistics conserve transmitted packets
//   overlay    - estimator windows bounded with consistent loss counts;
//                latency estimates outside the saturating-arithmetic
//                dead zone; link-state entries never published in the
//                future; hold-down strikes in [0,20] with bans bounded
//                by holddown_max; incumbent paths well-formed
//   routing    - hybrid overhead counters conserve (copies = packets +
//                duplications)
//   world      - delivery timeline length matches the send counter;
//                progress flags consistent
//
// audit_world returns one message per violation (empty = clean).

#ifndef RONPATH_SNAPSHOT_AUDIT_H_
#define RONPATH_SNAPSHOT_AUDIT_H_

#include <string>
#include <vector>

#include "snapshot/world.h"

namespace ronpath {

[[nodiscard]] std::vector<std::string> audit_world(const SimWorld& world);

// Human-readable audit summary ("audit clean" or a numbered list).
[[nodiscard]] std::string format_audit(const std::vector<std::string>& violations);

}  // namespace ronpath

#endif  // RONPATH_SNAPSHOT_AUDIT_H_
