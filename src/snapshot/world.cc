#include "snapshot/world.h"

#include <cassert>
#include <cstdio>

#include "snapshot/codec.h"

namespace ronpath {
namespace {

// Bit-packs the delivery timeline (LSB-first within each byte).
std::vector<std::uint8_t> pack_bits(const std::vector<bool>& bits) {
  std::vector<std::uint8_t> bytes((bits.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) bytes[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  }
  return bytes;
}

}  // namespace

SimWorld::SimWorld(const Scenario& scenario, FaultScheme scheme, const FaultMatrixConfig& cfg,
                   std::uint64_t seed)
    : scenario_name_(scenario.name),
      scenario_summary_(scenario.summary),
      dsl_(scenario.dsl),
      fault_start_(scenario.fault_start),
      fault_duration_(scenario.fault_duration),
      routable_(scenario.routable),
      scheme_(scheme),
      cfg_(cfg),
      seed_(seed),
      env_(scenario,
           scheme == FaultScheme::kMesh ? HybridMode::kAlwaysDuplicate : HybridMode::kAdaptive,
           cfg, seed) {
  delivered_.reserve(total_sends() + 1);
}

Scenario SimWorld::scenario_view() const {
  Scenario s;
  s.name = scenario_name_;
  s.summary = scenario_summary_;
  s.dsl = dsl_;
  s.fault_start = fault_start_;
  s.fault_duration = fault_duration_;
  s.routable = routable_;
  return s;
}

std::size_t SimWorld::total_sends() const {
  const std::int64_t interval = cfg_.send_interval.count_nanos();
  return static_cast<std::size_t>((cfg_.measured.count_nanos() + interval - 1) / interval);
}

bool SimWorld::send_one(TimePoint t) {
  constexpr NodeId src = 0;
  constexpr NodeId dst = 1;
  switch (scheme_) {
    case FaultScheme::kDirect:
      return env_.overlay->send(env_.overlay->route(src, dst, RouteTag::kDirect), t).delivered();
    case FaultScheme::kReactive:
      return env_.overlay->send(env_.overlay->route(src, dst, RouteTag::kLoss), t).delivered();
    case FaultScheme::kMesh:
    case FaultScheme::kHybrid:
      return env_.sender->send(src, dst, t).delivered();
  }
  return false;
}

void SimWorld::advance_to(std::size_t send_index) {
  const std::size_t total = total_sends();
  if (send_index > total) send_index = total;
  if (!warmed_) {
    env_.sched.run_until(measure_start());
    warmed_ = true;
  }
  while (next_send_ < send_index) {
    const TimePoint t =
        measure_start() + cfg_.send_interval * static_cast<std::int64_t>(next_send_);
    env_.sched.run_until(t);
    delivered_.push_back(send_one(t));
    ++next_send_;
  }
}

void SimWorld::run_to_end() {
  advance_to(total_sends());
  if (!drained_) {
    env_.sched.run_until(end_time());
    drained_ = true;
  }
}

std::uint64_t SimWorld::fingerprint() const {
  using snap::fnv1a;
  using snap::fnv1a_u64;
  std::uint64_t h = fnv1a(scenario_name_);
  h = fnv1a(dsl_, h);
  h = fnv1a_u64(static_cast<std::uint64_t>(scheme_), h);
  h = fnv1a_u64(seed_, h);
  h = fnv1a_u64(cfg_.node_count, h);
  h = fnv1a_u64(static_cast<std::uint64_t>(cfg_.warmup.count_nanos()), h);
  h = fnv1a_u64(static_cast<std::uint64_t>(cfg_.measured.count_nanos()), h);
  h = fnv1a_u64(static_cast<std::uint64_t>(cfg_.send_interval.count_nanos()), h);
  h = fnv1a_u64(static_cast<std::uint64_t>(cfg_.stable_streak), h);
  h = fnv1a_u64(cfg_.graceful_degradation ? 1 : 0, h);
  h = fnv1a_u64(static_cast<std::uint64_t>(fault_start_.since_epoch().count_nanos()), h);
  h = fnv1a_u64(static_cast<std::uint64_t>(fault_duration_.count_nanos()), h);
  // RNG discipline only (bool), NOT the shard count: sharded output is
  // shard-count-invariant, so a --shards 4 snapshot must restore into a
  // --shards 1 world.
  h = fnv1a_u64(cfg_.shards > 0 ? 1 : 0, h);
  // Scaling knobs (DESIGN.md §14). lazy_underlay is deliberately NOT
  // hashed: materialization order never changes the simulation, so a
  // lazy snapshot may not restore into an eager world — but that is a
  // format property and Network::restore_state rejects it with a
  // specific diagnostic.
  h = fnv1a_u64(cfg_.synth_nodes, h);
  h = fnv1a_u64(cfg_.overlay_fanout, h);
  h = fnv1a_u64(cfg_.overlay_landmarks, h);
  return h;
}

void SimWorld::save_state(snap::Encoder& e) const {
  e.tag("WRLD");
  e.b(warmed_);
  e.b(drained_);
  e.u64(next_send_);
  e.u64(delivered_.size());
  for (const std::uint8_t byte : pack_bits(delivered_)) e.u8(byte);
  // Scheduler clock first: restore resets it before owners re-arm.
  e.time(env_.sched.now());
  e.u64(env_.sched.next_seq());
  e.u64(env_.sched.dispatched_events());
  env_.net->save_state(e);
  env_.overlay->save_state(e);
  env_.sender->save_state(e);
}

void SimWorld::restore_state(snap::Decoder& d) {
  d.expect_tag("WRLD");
  warmed_ = d.b();
  drained_ = d.b();
  next_send_ = d.u64();
  const std::uint64_t n_delivered = d.count(0);
  if (n_delivered > total_sends()) {
    throw snap::SnapshotError("snapshot: delivery timeline longer than the run");
  }
  if (next_send_ != n_delivered) {
    throw snap::SnapshotError("snapshot: send counter disagrees with the delivery timeline");
  }
  delivered_.assign(n_delivered, false);
  std::uint8_t byte = 0;
  for (std::size_t i = 0; i < n_delivered; ++i) {
    if (i % 8 == 0) byte = d.u8();
    delivered_[i] = ((byte >> (i % 8)) & 1) != 0;
  }
  const TimePoint now = d.time();
  const std::uint64_t next_seq = d.u64();
  const std::uint64_t dispatched = d.u64();
  // Clock before owners: restore_clock invalidates every old handle and
  // empties the heap, then net/overlay re-arm with the saved sequence
  // numbers so firing order is preserved exactly.
  env_.sched.restore_clock(now, next_seq, dispatched);
  env_.net->restore_state(d);
  env_.overlay->restore_state(d);
  env_.sender->restore_state(d);
  d.expect_done();
}

FaultCell SimWorld::cell() const {
  assert(drained_);
  const Scenario scenario = scenario_view();
  FaultCell cell = analyze_fault_cell(scenario, cfg_, delivered_);
  cell.overhead = (scheme_ == FaultScheme::kMesh || scheme_ == FaultScheme::kHybrid)
                      ? env_.sender->overhead_factor()
                      : 1.0;
  cell.route_switches = env_.overlay->router(0).loss_switches(1);
  cell.injected_drops = env_.net->stats().dropped_injected;
  cell.merged_fault_windows = env_.injector->merged_window_count();
  return cell;
}

std::string SimWorld::report() const {
  char buf[256];
  std::string out;
  out += "== sim world ==\n";
  out += "scenario " + scenario_name_ + " | scheme " + std::string(to_string(scheme_)) +
         " | seed " + std::to_string(seed_) + " | nodes " + std::to_string(env_.topo.size()) +
         "\n";
  std::snprintf(buf, sizeof buf, "clock %lldns | dispatched %llu | next-seq %llu",
                static_cast<long long>(env_.sched.now().since_epoch().count_nanos()),
                static_cast<unsigned long long>(env_.sched.dispatched_events()),
                static_cast<unsigned long long>(env_.sched.next_seq()));
  out += buf;
  out += " | sends " + std::to_string(next_send_) + "/" + std::to_string(total_sends()) + "\n";

  const Network::Stats& st = env_.net->stats();
  std::snprintf(buf, sizeof buf,
                "net: transmitted %lld | delivered %lld | drops random %lld burst %lld "
                "outage %lld injected %lld\n",
                static_cast<long long>(st.transmitted), static_cast<long long>(st.delivered),
                static_cast<long long>(st.dropped_random), static_cast<long long>(st.dropped_burst),
                static_cast<long long>(st.dropped_outage),
                static_cast<long long>(st.dropped_injected));
  out += buf;

  const std::vector<std::uint8_t> bits = pack_bits(delivered_);
  std::uint64_t hash = snap::fnv1a(
      std::string_view(reinterpret_cast<const char*>(bits.data()), bits.size()));
  hash = snap::fnv1a_u64(delivered_.size(), hash);
  std::snprintf(buf, sizeof buf, "probes sent %lld | delivered-hash %016llx\n",
                static_cast<long long>(env_.overlay->probes_sent()),
                static_cast<unsigned long long>(hash));
  out += buf;

  if (drained_) {
    const FaultCell c = cell();
    std::snprintf(buf, sizeof buf,
                  "cell: loss pre %.10f%% fault %.10f%% post %.10f%% | failover %s%.10fs | "
                  "recovery %s%.10fs | overhead %.10f | switches %lld | injected %lld\n",
                  c.loss_pre_pct, c.loss_fault_pct, c.loss_post_pct,
                  c.failover_measured ? "" : "(unmeasured) ", c.failover_s,
                  c.recovery_measured ? "" : "(unmeasured) ", c.recovery_s, c.overhead,
                  static_cast<long long>(c.route_switches),
                  static_cast<long long>(c.injected_drops));
    out += buf;
  }
  return out;
}

void SimWorld::check_invariants(std::vector<std::string>& out) const {
  env_.sched.check_invariants(out);
  env_.net->check_invariants(out);
  env_.overlay->check_invariants(env_.sched.now(), out);
  env_.sender->check_invariants(out);
  if (delivered_.size() != next_send_) {
    out.push_back("world: delivery timeline length disagrees with the send counter");
  }
  if (next_send_ > total_sends()) {
    out.push_back("world: send counter past the end of the run");
  }
  if (!warmed_ && next_send_ > 0) {
    out.push_back("world: sends recorded before warmup completed");
  }
  if (drained_ && next_send_ != total_sends()) {
    out.push_back("world: drained flag set before all sends completed");
  }
}

}  // namespace ronpath
