#include "snapshot/audit.h"

namespace ronpath {

std::vector<std::string> audit_world(const SimWorld& world) {
  std::vector<std::string> out;
  world.check_invariants(out);
  return out;
}

std::string format_audit(const std::vector<std::string>& violations) {
  if (violations.empty()) return "audit clean\n";
  std::string out = "audit FAILED with " + std::to_string(violations.size()) + " violation(s):\n";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    out += "  " + std::to_string(i + 1) + ". " + violations[i] + "\n";
  }
  return out;
}

}  // namespace ronpath
