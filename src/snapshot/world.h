// A fault-matrix cell as a resumable object.
//
// SimWorld runs the same world as core/fault_matrix.cc's run_fault_cell
// — both build it through core/cell_env.h, so construction order and the
// RNG fork sequence are shared by code, not by convention — but exposes
// the run as explicit steps (advance_to / run_to_end) with checkpoints
// in between. A differential test pins SimWorld's finished cell()
// against run_fault_cell for every canonical scenario, so the CBR send
// loops cannot drift apart silently.
//
// Checkpoint model: pending events are closures, so save_state records
// per-owner re-arm descriptors (see event/scheduler.h). A restore
// target is built by constructing a SimWorld with the same arguments
// (identical ctors consume identical RNG forks), then overwriting all
// mutable state from the payload; the scheduler clock is restored first
// so owners can re-arm their events with the original sequence numbers.
// The result: a killed-and-restored run produces byte-identical reports
// to an uninterrupted one at any checkpoint cadence.

#ifndef RONPATH_SNAPSHOT_WORLD_H_
#define RONPATH_SNAPSHOT_WORLD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/cell_env.h"
#include "core/fault_matrix.h"

namespace ronpath {

class SimWorld {
 public:
  // Throws std::runtime_error when the scenario DSL does not parse.
  // The scenario's strings are copied, so callers may pass synthesized
  // schedules with transient backing storage (the soak harness does).
  SimWorld(const Scenario& scenario, FaultScheme scheme, const FaultMatrixConfig& cfg,
           std::uint64_t seed);

  // CBR progress: one send per cfg.send_interval over the measured
  // window, exactly run_fault_cell's loop.
  [[nodiscard]] std::size_t total_sends() const;
  [[nodiscard]] std::size_t next_send() const { return next_send_; }
  [[nodiscard]] bool finished() const { return drained_; }

  // Runs the simulation forward until `send_index` CBR packets have been
  // sent (clamped to total_sends()). The warmup runs on first call.
  void advance_to(std::size_t send_index);
  // Completes all sends and drains the scheduler to the end of the run.
  void run_to_end();

  // Identity of this world: FNV-1a over scenario, scheme, config and
  // seed. Sealed into snapshot files so a snapshot cannot be restored
  // into a differently-configured world.
  [[nodiscard]] std::uint64_t fingerprint() const;

  // Serializes / overwrites all mutable state. restore_state expects a
  // freshly constructed SimWorld with the same constructor arguments and
  // throws snap::SnapshotError on any mismatch or corruption.
  void save_state(snap::Encoder& e) const;
  void restore_state(snap::Decoder& d);

  // Finished-run results, identical to run_fault_cell's.
  [[nodiscard]] FaultCell cell() const;

  // Deterministic text report: scenario identity, clock/event/net/probe
  // counters, a delivery-timeline hash, and (when finished) the cell
  // metrics. Byte-identical between an uninterrupted run and any
  // kill/restore schedule — the soak harness's ground truth.
  [[nodiscard]] std::string report() const;

  // Runtime invariant audit across every layer (scheduler heap, loss
  // processes, estimators, link-state table, routers, overhead
  // counters) plus world-level progress consistency.
  void check_invariants(std::vector<std::string>& out) const;

  [[nodiscard]] Scheduler& scheduler() { return env_.sched; }
  [[nodiscard]] const FaultMatrixConfig& config() const { return cfg_; }
  [[nodiscard]] std::string_view scenario_name() const { return scenario_name_; }
  // Read-only views for benches/tests (control meters, resident state,
  // materialized-component counts).
  [[nodiscard]] const OverlayNetwork& overlay() const { return *env_.overlay; }
  [[nodiscard]] const Network& network() const { return *env_.net; }

 private:
  [[nodiscard]] Scenario scenario_view() const;
  [[nodiscard]] TimePoint measure_start() const { return TimePoint::epoch() + cfg_.warmup; }
  [[nodiscard]] TimePoint end_time() const { return measure_start() + cfg_.measured; }
  [[nodiscard]] bool send_one(TimePoint t);

  // Configuration (immutable after construction).
  std::string scenario_name_;
  std::string scenario_summary_;
  std::string dsl_;
  TimePoint fault_start_;
  Duration fault_duration_;
  bool routable_;
  FaultScheme scheme_;
  FaultMatrixConfig cfg_;
  std::uint64_t seed_;

  // The simulated world, built by the shared CellEnv sequence (same
  // construction + RNG fork order as run_fault_cell by construction).
  CellEnv env_;

  // Mutable progress state.
  std::vector<bool> delivered_;
  std::size_t next_send_ = 0;
  bool warmed_ = false;
  bool drained_ = false;
};

}  // namespace ronpath

#endif  // RONPATH_SNAPSHOT_WORLD_H_
