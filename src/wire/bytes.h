// Bounds-checked binary readers and writers.
//
// All multi-byte fields are big-endian on the wire (network order). The
// reader never throws: a short or corrupt buffer flips a sticky error flag
// and subsequent reads return zero, so decode functions can validate once
// at the end.

#ifndef RONPATH_WIRE_BYTES_H_
#define RONPATH_WIRE_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace ronpath {

class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] std::span<const std::uint8_t> view() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8() {
    if (!require(1)) return 0;
    return data_[pos_++];
  }
  [[nodiscard]] std::uint16_t u16() {
    if (!require(2)) return 0;
    const std::uint16_t v =
        static_cast<std::uint16_t>(static_cast<std::uint16_t>(data_[pos_]) << 8 | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  [[nodiscard]] std::uint32_t u32() {
    const std::uint32_t hi = u16();
    const std::uint32_t lo = u16();
    return hi << 16 | lo;
  }
  [[nodiscard]] std::uint64_t u64() {
    const std::uint64_t hi = u32();
    const std::uint64_t lo = u32();
    return hi << 32 | lo;
  }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  void skip(std::size_t n) {
    if (require(n)) pos_ += n;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  // True iff every read so far was in bounds.
  [[nodiscard]] bool ok() const { return ok_; }
  // True iff ok() and the buffer was fully consumed.
  [[nodiscard]] bool exhausted() const { return ok_ && pos_ == data_.size(); }

 private:
  bool require(std::size_t n) {
    if (pos_ + n > data_.size()) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace ronpath

#endif  // RONPATH_WIRE_BYTES_H_
