#include "wire/packet.h"

#include <array>

namespace ronpath {
namespace {

constexpr std::uint16_t kMagic = 0x524F;  // "RO"
constexpr std::uint8_t kVersion = 1;

constexpr std::uint8_t kFlagResponse = 0x01;
constexpr std::uint8_t kFlagForwarded = 0x02;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const auto table = make_crc_table();
  return table;
}

bool valid_route_tag(std::uint8_t v) { return v <= static_cast<std::uint8_t>(RouteTag::kLoss); }

bool valid_scheme(std::uint8_t v) {
  return v <= static_cast<std::uint8_t>(PairScheme::kRandLoss);
}

bool valid_type(std::uint8_t v) {
  return v >= static_cast<std::uint8_t>(PacketType::kProbeRequest) &&
         v <= static_cast<std::uint8_t>(PacketType::kData);
}

}  // namespace

std::string_view to_string(RouteTag tag) {
  switch (tag) {
    case RouteTag::kDirect: return "direct";
    case RouteTag::kRand: return "rand";
    case RouteTag::kLat: return "lat";
    case RouteTag::kLoss: return "loss";
  }
  return "?";
}

std::string_view to_string(PairScheme scheme) {
  switch (scheme) {
    case PairScheme::kDirect: return "direct";
    case PairScheme::kLat: return "lat";
    case PairScheme::kLoss: return "loss";
    case PairScheme::kDirectRand: return "direct rand";
    case PairScheme::kLatLoss: return "lat loss";
    case PairScheme::kDirectDirect: return "direct direct";
    case PairScheme::kDd10ms: return "dd 10 ms";
    case PairScheme::kDd20ms: return "dd 20 ms";
    case PairScheme::kRand: return "rand";
    case PairScheme::kRandRand: return "rand rand";
    case PairScheme::kDirectLat: return "direct lat";
    case PairScheme::kDirectLoss: return "direct loss";
    case PairScheme::kRandLat: return "rand lat";
    case PairScheme::kRandLoss: return "rand loss";
  }
  return "?";
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  const auto& table = crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t b : data) c = table[(c ^ b) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void encode_into(const ProbePacket& pkt, ByteWriter& w) {
  const std::size_t start = w.size();
  w.u16(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(pkt.type));
  w.u8(static_cast<std::uint8_t>(pkt.route_tag));
  w.u8(static_cast<std::uint8_t>(pkt.scheme));
  w.u8(pkt.pair_index);
  std::uint8_t flags = 0;
  if (pkt.flags.response) flags |= kFlagResponse;
  if (pkt.flags.forwarded) flags |= kFlagForwarded;
  w.u8(flags);
  w.u64(pkt.probe_id);
  w.u16(pkt.src);
  w.u16(pkt.dst);
  w.u16(pkt.via);
  w.i64(pkt.send_ts.nanos_since_epoch());
  w.i64(pkt.echo_ts.nanos_since_epoch());
  const auto body = w.view().subspan(start);
  w.u32(crc32(body));
}

std::vector<std::uint8_t> encode(const ProbePacket& pkt) {
  ByteWriter w(kProbePacketWireSize);
  encode_into(pkt, w);
  return std::move(w).take();
}

std::optional<ProbePacket> decode(std::span<const std::uint8_t> data) {
  if (data.size() != kProbePacketWireSize) return std::nullopt;
  const auto body = data.first(data.size() - 4);

  ByteReader r(data);
  if (r.u16() != kMagic) return std::nullopt;
  if (r.u8() != kVersion) return std::nullopt;

  ProbePacket pkt;
  const std::uint8_t type = r.u8();
  const std::uint8_t tag = r.u8();
  const std::uint8_t scheme = r.u8();
  pkt.pair_index = r.u8();
  const std::uint8_t flags = r.u8();
  pkt.probe_id = r.u64();
  pkt.src = r.u16();
  pkt.dst = r.u16();
  pkt.via = r.u16();
  pkt.send_ts = TimePoint::from_nanos(r.i64());
  pkt.echo_ts = TimePoint::from_nanos(r.i64());
  const std::uint32_t wire_crc = r.u32();

  if (!r.exhausted()) return std::nullopt;
  if (!valid_type(type) || !valid_route_tag(tag) || !valid_scheme(scheme)) return std::nullopt;
  if (pkt.pair_index > 1) return std::nullopt;
  if ((flags & ~(kFlagResponse | kFlagForwarded)) != 0) return std::nullopt;
  if (wire_crc != crc32(body)) return std::nullopt;

  pkt.type = static_cast<PacketType>(type);
  pkt.route_tag = static_cast<RouteTag>(tag);
  pkt.scheme = static_cast<PairScheme>(scheme);
  pkt.flags.response = (flags & kFlagResponse) != 0;
  pkt.flags.forwarded = (flags & kFlagForwarded) != 0;
  return pkt;
}

}  // namespace ronpath
