// Wire format for ronpath probe and data packets.
//
// The format mirrors the paper's measurement method (Section 4.1): each
// probe carries a random 64-bit identifier that both end hosts log together
// with send and receive timestamps, allowing one-way reachability and
// latency to be computed offline. A probe consists of one or two request
// packets; two-packet probes share the identifier and are distinguished by
// pair_index.
//
// Layout (big-endian), 42 bytes including trailing checksum:
//   magic      u16   0x524F ("RO")
//   version    u8    1
//   type       u8    PacketType
//   route_tag  u8    RouteTag of this copy (Table 4 of the paper)
//   scheme     u8    PairScheme the probe belongs to
//   pair_index u8    0 = first copy, 1 = second copy
//   flags      u8    bit0: response, bit1: forwarded by intermediate
//   probe_id   u64   shared by both packets of a pair
//   src        u16   overlay node id of the initiator
//   dst        u16   overlay node id of the target
//   via        u16   intermediate node id, kDirectVia if none
//   send_ts    i64   initiator send time (ns since run start)
//   echo_ts    i64   request send time echoed in responses (0 in requests)
//   crc32      u32   CRC-32 over all preceding bytes

#ifndef RONPATH_WIRE_PACKET_H_
#define RONPATH_WIRE_PACKET_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "util/ids.h"
#include "util/time.h"
#include "wire/bytes.h"

namespace ronpath {

enum class PacketType : std::uint8_t {
  kProbeRequest = 1,
  kProbeResponse = 2,
  kData = 3,
};

// The per-packet routing tactics of Table 4.
enum class RouteTag : std::uint8_t {
  kDirect = 0,  // direct Internet path
  kRand = 1,    // via a random intermediate node
  kLat = 2,     // latency-optimized path from probing
  kLoss = 3,    // loss-optimized path from probing
};

[[nodiscard]] std::string_view to_string(RouteTag tag);

// The probe methods measured in the paper's datasets. Single-packet
// schemes use only `first`; two-packet schemes send both copies.
enum class PairScheme : std::uint8_t {
  // RON2003 set (Section 4).
  kDirect = 0,
  kLat = 1,
  kLoss = 2,
  kDirectRand = 3,
  kLatLoss = 4,
  kDirectDirect = 5,
  kDd10ms = 6,
  kDd20ms = 7,
  // Additional RONwide-only combinations (Table 7).
  kRand = 8,
  kRandRand = 9,
  kDirectLat = 10,
  kDirectLoss = 11,
  kRandLat = 12,
  kRandLoss = 13,
};

[[nodiscard]] std::string_view to_string(PairScheme scheme);

struct PacketFlags {
  bool response = false;
  bool forwarded = false;

  friend bool operator==(const PacketFlags&, const PacketFlags&) = default;
};

struct ProbePacket {
  PacketType type = PacketType::kProbeRequest;
  RouteTag route_tag = RouteTag::kDirect;
  PairScheme scheme = PairScheme::kDirect;
  std::uint8_t pair_index = 0;
  PacketFlags flags;
  std::uint64_t probe_id = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  NodeId via = kDirectVia;
  TimePoint send_ts;
  TimePoint echo_ts;

  friend bool operator==(const ProbePacket&, const ProbePacket&) = default;
};

inline constexpr std::size_t kProbePacketWireSize = 42;

// Serializes `pkt` including trailing CRC-32.
[[nodiscard]] std::vector<std::uint8_t> encode(const ProbePacket& pkt);
void encode_into(const ProbePacket& pkt, ByteWriter& w);

// Returns nullopt on truncation, bad magic/version, unknown enum values,
// or checksum mismatch.
[[nodiscard]] std::optional<ProbePacket> decode(std::span<const std::uint8_t> data);

// CRC-32 (IEEE 802.3, reflected) over `data`.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

}  // namespace ronpath

#endif  // RONPATH_WIRE_PACKET_H_
