// The simulated underlay: delivers packets over one-hop overlay paths with
// loss and latency drawn from the composed per-component processes.
//
// This is the substitute for the paper's physical 30-node RON testbed.
// transmit() walks the components of a path in traversal order and samples
// each component's state at the instant the packet reaches it. Because
// component state is a deterministic timeline, two packets traversing a
// shared component at (nearly) the same moment share burst fate - the
// mechanism behind the paper's correlated-loss findings - while spacing
// packets in time (dd 10 ms / dd 20 ms) or routing the second copy around
// a component de-correlates them exactly as in Section 4.4.

#ifndef RONPATH_NET_NETWORK_H_
#define RONPATH_NET_NETWORK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/config.h"
#include "net/loss_process.h"
#include "net/topology.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/time.h"

namespace ronpath {

enum class DropCause : std::uint8_t {
  kNone = 0,      // delivered
  kRandom = 1,    // independent per-packet loss
  kBurst = 2,     // loss burst (queue overflow)
  kOutage = 3,    // total component outage
  kInjected = 4,  // scripted fault (see fault/injector.h)
};

[[nodiscard]] std::string_view to_string(DropCause cause);

// Class of traffic a transmit() call carries. Control probes are the
// overlay's 15 s path-quality probes; everything else (application data,
// measurement probes) is data. Scripted probe-blackhole faults kill
// control probes while leaving the data plane intact, poisoning the
// estimator state without an underlying path failure.
enum class TrafficClass : std::uint8_t {
  kData = 0,
  kProbe = 1,
};

// Injection interface for scripted faults. The concrete implementation
// lives in fault/injector.h (the fault library depends on net, not the
// other way around). All queries must be deterministic pure functions of
// (fault schedule, time): the injector is part of the seed-stable state.
class FaultHook {
 public:
  virtual ~FaultHook() = default;
  // Packets traversing `component` at time t are forcibly dropped.
  [[nodiscard]] virtual bool component_down(std::size_t component, TimePoint t) const = 0;
  // Control probes with `node` as an endpoint are blackholed at time t.
  [[nodiscard]] virtual bool probe_blackhole(NodeId node, TimePoint t) const = 0;
};

// Pregeneration hook for the sharded underlay (pdes/advance.h): when the
// send watermark crosses the armed threshold, transmit() calls
// advance_to(watermark) and re-arms at the returned threshold. The hook
// must advance every component's timeline far enough that sample()
// never generates on its own — the quantized grid walk that keeps the
// per-component horizon sequence shard-count-invariant lives behind
// this interface, not in the packet loop.
class AdvanceHook {
 public:
  virtual ~AdvanceHook() = default;
  virtual TimePoint advance_to(TimePoint watermark) = 0;
};

struct TransmitResult {
  bool delivered = false;
  // One-way latency; valid only when delivered.
  Duration latency;
  DropCause cause = DropCause::kNone;
  // Component index where the packet was dropped (when not delivered).
  std::size_t drop_component = 0;

  [[nodiscard]] bool lost() const { return !delivered; }
};

class Network {
 public:
  // `horizon` bounds the run; provider events are pregenerated up to it.
  Network(Topology topology, NetConfig config, Duration horizon, Rng rng);

  [[nodiscard]] const Topology& topology() const { return topo_; }
  [[nodiscard]] const NetConfig& config() const { return config_; }

  // Sends one packet along `path` at `send_time`. Queries must be roughly
  // monotone in time (see loss_process.h): a debug build asserts when a
  // send lags the furthest send by more than kQuerySafety; a release
  // build clamps the query forward to the safety watermark instead of
  // silently reading pruned (wrong) component state.
  TransmitResult transmit(const PathSpec& path, TimePoint send_time,
                          TrafficClass cls = TrafficClass::kData);

  // Installs (or clears, with nullptr) the scripted fault injector. The
  // hook must outlive the network or be cleared before destruction.
  void set_fault_hook(const FaultHook* hook) { fault_ = hook; }
  [[nodiscard]] const FaultHook* fault_hook() const { return fault_; }

  // Sharded-underlay mode (PDES; see DESIGN.md §13): replaces the single
  // shared packet RNG with one substream per component, forked
  // deterministically from it. Per-hop draws then depend only on the
  // order a COMPONENT is traversed — not on the global interleaving of
  // packets — which is what makes shard-parallel execution (and the
  // sequenced benches at any --shards value) byte-reproducible. The two
  // disciplines consume different streams, so sharded outputs are a
  // different (equally valid) realization than legacy ones; the
  // determinism contract is across shard counts, not across modes.
  // Must be called before any transmit; idempotent.
  void enable_sharded_underlay();
  [[nodiscard]] bool sharded_underlay() const { return !pkt_rngs_.empty(); }

  // Pregeneration trigger for the sharded mode; the hook must outlive
  // the network or be cleared before destruction.
  void set_advance_hook(AdvanceHook* hook) {
    advance_ = hook;
    advance_next_ = TimePoint::epoch();
  }

  // One component traversal under the sharded discipline: sample the
  // component at t, draw the drop coin and (when delivered) the delay
  // from the component's own substream. Thread-safe across components —
  // the PDES engine calls this from shard workers for the components
  // they own; no shared mutable state is touched.
  struct HopOutcome {
    bool dropped = false;
    DropCause cause = DropCause::kNone;
    Duration delay = Duration::zero();
  };
  [[nodiscard]] HopOutcome traverse_hop(std::size_t component, TimePoint t);

  // Deterministic lower bound on a single hop's delay (fixed delay plus
  // stretched propagation for core segments; jitter and queueing only
  // add). The PDES lookahead bound derives from these floors.
  [[nodiscard]] Duration hop_floor(std::size_t component) const;

  // Deterministic latency floor of a path (propagation + fixed delays +
  // forwarding, no jitter/queueing/incidents). Used by tests and by
  // latency-model sanity checks.
  [[nodiscard]] Duration base_latency(const PathSpec& path) const;

  // Routing stretch factor applied to the core segment src->dst.
  [[nodiscard]] double core_stretch(NodeId src, NodeId dst) const;

  // Aggregate drop statistics since construction.
  struct Stats {
    std::int64_t transmitted = 0;
    std::int64_t delivered = 0;
    std::int64_t dropped_random = 0;
    std::int64_t dropped_burst = 0;
    std::int64_t dropped_outage = 0;
    std::int64_t dropped_injected = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  // Test hook: the process driving a component's loss state (materializes
  // it first under lazy_components).
  [[nodiscard]] ComponentProcess& component(std::size_t index) {
    return component_at(index);
  }
  [[nodiscard]] std::size_t component_count() const { return topo_.component_count(); }
  // Lazy-components mode: cores materialized so far (== component_count()
  // minus never-traversed cores; everything in eager mode).
  [[nodiscard]] std::size_t materialized_components() const {
    return components_.size() + cores_.size();
  }
  [[nodiscard]] bool lazy_components() const { return lazy_ != nullptr; }

  // Snapshot support: serializes the mutable state (per-component
  // timelines, packet Rng, drop statistics, monotonicity watermark).
  // Everything else is derived from the ctor arguments, so restore_state
  // expects a Network constructed identically.
  void save_state(snap::Encoder& e) const;
  void restore_state(snap::Decoder& d);

  // Invariant auditor: per-component timeline invariants plus stats
  // conservation (every transmit delivered or charged to one drop cause).
  void check_invariants(std::vector<std::string>& out) const;

 private:
  struct LatencyAddition {
    TimePoint start;
    TimePoint end;
    Duration added;
  };

  // Per-component constants read on every hop, precomputed once so the
  // packet loop never recomputes great-circle trig, stretch lookups, or
  // log(jitter_median). Values are bit-identical to evaluating the source
  // expressions in place.
  struct HopMeta {
    Duration fixed_delay;
    Duration stretched_prop;  // core only: propagation * stretch, resolved
    double ln_jitter_median = 0.0;
    double jitter_sigma = 0.0;
    bool is_core = false;
    bool has_additions = false;
  };

  // Lazy-components machinery (config_.lazy_components): site components
  // stay eager in components_; core (pair) components materialize on
  // first touch from keyed construction forks, so the untouched bulk of
  // the n*(n-1) grid costs nothing. Construction of a touched core is
  // bit-identical to the eager ctor's.
  struct SiteEvent {
    TimePoint start;
    TimePoint end;
    std::uint64_t seq;
  };
  struct LazyCtx {
    Rng quality_rng;     // fork("core-quality")
    Rng stretch_rng;     // fork("core-stretch")
    Rng hit_root;        // fork("event-hits")
    Rng component_root;  // fork("component")
    std::vector<std::vector<SiteEvent>> site_events;
  };
  struct CoreState {
    ComponentProcess proc;
    HopMeta meta;
    std::vector<LatencyAddition> additions;
  };

  // Materializes (if needed) and returns the lazy core state for a core
  // component index. Pre: lazy mode and index >= site component count.
  [[nodiscard]] CoreState& core_at(std::size_t component);
  [[nodiscard]] ComponentProcess& component_at(std::size_t component);
  [[nodiscard]] const HopMeta& hop_meta_at(std::size_t component);
  [[nodiscard]] const std::vector<LatencyAddition>& additions_at(std::size_t component);

  [[nodiscard]] Duration hop_delay(std::size_t component, const ComponentSample& s,
                                   TimePoint t);
  TransmitResult transmit_sharded(const PathSpec& path, TimePoint send_time, TrafficClass cls);

  Topology topo_;
  NetConfig config_;
  // Eager mode: every component, indexed by component id. Lazy mode:
  // site components only; cores live in cores_.
  std::vector<ComponentProcess> components_;
  std::vector<HopMeta> hop_meta_;
  std::vector<std::vector<LatencyAddition>> latency_additions_;
  std::vector<double> core_stretch_;  // eager mode only; lazy recomputes
  std::unique_ptr<LazyCtx> lazy_;    // non-null => lazy core materialization
  std::unordered_map<std::size_t, CoreState> cores_;  // lazy mode only
  std::size_t site_comp_count_ = 0;  // kSiteCompCount * n
  Rng pkt_rng_;
  // Sharded mode: one packet-draw substream per component, forked from
  // pkt_rng_ at enable time. Empty = legacy single-stream discipline.
  std::vector<Rng> pkt_rngs_;
  Stats stats_;
  const FaultHook* fault_ = nullptr;
  AdvanceHook* advance_ = nullptr;
  TimePoint advance_next_;  // re-arm threshold for advance_
  TimePoint max_send_;  // furthest send_time seen (monotonicity watermark)
};

}  // namespace ronpath

#endif  // RONPATH_NET_NETWORK_H_
