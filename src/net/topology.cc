#include "net/topology.h"

#include <cassert>
#include <cmath>

namespace ronpath {
namespace {

constexpr double kEarthRadiusKm = 6371.0;
// Light in fiber is ~2/3 c; real paths are not geodesics. The combined
// factor maps great-circle km to one-way propagation; 1 ms per ~100 km.
constexpr double kFiberKmPerMs = 113.0;
// Fiber routes detour relative to the great circle.
constexpr double kPathStretch = 1.12;
// Router/switch floor so co-located sites still see sub-ms, nonzero delay.
constexpr double kFloorMs = 0.2;

double deg2rad(double d) { return d * M_PI / 180.0; }

double great_circle_km(const Site& a, const Site& b) {
  const double phi1 = deg2rad(a.lat_deg);
  const double phi2 = deg2rad(b.lat_deg);
  const double dphi = deg2rad(b.lat_deg - a.lat_deg);
  const double dlam = deg2rad(b.lon_deg - a.lon_deg);
  const double h = std::sin(dphi / 2) * std::sin(dphi / 2) +
                   std::cos(phi1) * std::cos(phi2) * std::sin(dlam / 2) * std::sin(dlam / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

}  // namespace

std::string_view to_string(LinkClass c) {
  switch (c) {
    case LinkClass::kUniversityI2: return "us-university-i2";
    case LinkClass::kUniversity: return "us-university";
    case LinkClass::kLargeIsp: return "us-large-isp";
    case LinkClass::kSmallIsp: return "us-small-isp";
    case LinkClass::kCompany: return "us-company";
    case LinkClass::kCableDsl: return "us-cable-dsl";
    case LinkClass::kIntlUniversity: return "intl-university";
    case LinkClass::kIntlIsp: return "intl-isp";
  }
  return "?";
}

Topology::Topology(std::vector<Site> sites) : sites_(std::move(sites)) {
  assert(!sites_.empty());
  assert(sites_.size() < kDirectVia);
}

std::optional<NodeId> Topology::find(std::string_view name) const {
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    if (sites_[i].name == name) return static_cast<NodeId>(i);
  }
  return std::nullopt;
}

Duration Topology::propagation(NodeId a, NodeId b) const {
  assert(a < sites_.size() && b < sites_.size());
  if (a == b) return Duration::from_millis_f(kFloorMs);
  const double km = great_circle_km(sites_[a], sites_[b]);
  const double ms = kFloorMs + km * kPathStretch / kFiberKmPerMs;
  return Duration::from_millis_f(ms);
}

std::size_t Topology::component_count() const {
  const std::size_t n = sites_.size();
  return kSiteCompCount * n + n * (n - 1);
}

std::size_t Topology::site_index(NodeId site, SiteComp comp) const {
  assert(site < sites_.size());
  return kSiteCompCount * static_cast<std::size_t>(site) + static_cast<std::size_t>(comp);
}

std::size_t Topology::core_index(NodeId src, NodeId dst) const {
  const std::size_t n = sites_.size();
  assert(src < n && dst < n && src != dst);
  // Dense ordered-pair index, skipping the diagonal.
  const std::size_t row = static_cast<std::size_t>(src);
  const std::size_t col = static_cast<std::size_t>(dst);
  return kSiteCompCount * n + row * (n - 1) + (col < row ? col : col - 1);
}

ComponentId Topology::component(std::size_t index) const {
  const std::size_t n = sites_.size();
  if (index < kSiteCompCount * n) {
    return ComponentId{ComponentId::Kind::kSite,
                       static_cast<NodeId>(index / kSiteCompCount),
                       static_cast<NodeId>(index % kSiteCompCount)};
  }
  const std::size_t pair = index - kSiteCompCount * n;
  const std::size_t row = pair / (n - 1);
  std::size_t col = pair % (n - 1);
  if (col >= row) ++col;
  return ComponentId{ComponentId::Kind::kCore, static_cast<NodeId>(row),
                     static_cast<NodeId>(col)};
}

std::size_t Topology::hops_into(const PathSpec& path, Hop* out) const {
  assert(path.src < sites_.size() && path.dst < sites_.size());
  assert(path.src != path.dst);
  Hop* w = out;
  auto egress = [&](NodeId site) {
    *w++ = {site_index(site, SiteComp::kUp), site, false};
    *w++ = {site_index(site, SiteComp::kProvOut), site, false};
  };
  // `forwarder`: this ingress terminates at an intermediate that must
  // turn the packet around at application level.
  auto ingress = [&](NodeId site, bool forwarder) {
    *w++ = {site_index(site, SiteComp::kProvIn), site, false};
    *w++ = {site_index(site, SiteComp::kDown), site, forwarder};
  };

  if (path.is_direct()) {
    egress(path.src);
    *w++ = {core_index(path.src, path.dst), path.src, false};
    ingress(path.dst, false);
    return static_cast<std::size_t>(w - out);
  }

  assert(path.via < sites_.size());
  assert(path.via != path.src && path.via != path.dst);
  NodeId waypoints[4] = {path.src, path.via, path.dst, path.dst};
  std::size_t n_waypoints = 3;
  if (path.is_two_hop()) {
    assert(path.via2 < sites_.size());
    assert(path.via2 != path.src && path.via2 != path.dst && path.via2 != path.via);
    waypoints[2] = path.via2;
    waypoints[3] = path.dst;
    n_waypoints = 4;
  }

  for (std::size_t leg = 0; leg + 1 < n_waypoints; ++leg) {
    const NodeId from = waypoints[leg];
    const NodeId to = waypoints[leg + 1];
    egress(from);
    *w++ = {core_index(from, to), from, false};
    ingress(to, /*forwarder=*/leg + 2 < n_waypoints);
  }
  return static_cast<std::size_t>(w - out);
}

std::vector<Topology::Hop> Topology::hops(const PathSpec& path) const {
  Hop buf[kMaxHops];
  const std::size_t n = hops_into(path, buf);
  return std::vector<Hop>(buf, buf + n);
}

}  // namespace ronpath
