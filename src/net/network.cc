#include "net/network.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "snapshot/codec.h"

namespace ronpath {
namespace {

// Sorts and returns boost intervals by start time.
std::vector<StateInterval> sorted(std::vector<StateInterval> v) {
  std::sort(v.begin(), v.end(),
            [](const StateInterval& a, const StateInterval& b) { return a.start < b.start; });
  return v;
}

}  // namespace

std::string_view to_string(DropCause cause) {
  switch (cause) {
    case DropCause::kNone: return "none";
    case DropCause::kRandom: return "random";
    case DropCause::kBurst: return "burst";
    case DropCause::kOutage: return "outage";
    case DropCause::kInjected: return "injected";
  }
  return "?";
}

Network::Network(Topology topology, NetConfig config, Duration horizon, Rng rng)
    : topo_(std::move(topology)), config_(std::move(config)), pkt_rng_(rng.fork("packets")) {
  const std::size_t n_components = topo_.component_count();
  const std::size_t n = topo_.size();
  site_comp_count_ = kSiteCompCount * n;

  // Pregenerate provider-level events per site over the run horizon.
  std::vector<std::vector<SiteEvent>> site_events(n);
  const auto& pe = config_.provider_events;
  if (pe.events_per_site_day > 0.0) {
    const Duration mean_gap = Duration::from_seconds_f(86'400.0 / pe.events_per_site_day);
    const double expected_events =
        horizon.to_seconds_f() / 86'400.0 * pe.events_per_site_day;
    for (NodeId s = 0; s < n; ++s) {
      site_events[s].reserve(static_cast<std::size_t>(expected_events * 1.5) + 8);
      Rng er = rng.fork("provider-events").fork(s);
      TimePoint t = TimePoint::epoch() + er.exponential_duration(mean_gap);
      std::uint64_t seq = 0;
      while (t < TimePoint::epoch() + horizon) {
        site_events[s].push_back({t, t + er.exponential_duration(pe.mean_duration), seq++});
        t += er.exponential_duration(mean_gap);
      }
    }
  }

  if (config_.lazy_components) {
    // Lazy mode: keep the keyed construction forks and the pregenerated
    // site events, materialize only the per-site components now; cores
    // (the n*(n-1) bulk) are built on first touch in core_at(), with
    // construction bit-identical to the eager branch below.
    lazy_ = std::make_unique<LazyCtx>(
        LazyCtx{rng.fork("core-quality"), rng.fork("core-stretch"), rng.fork("event-hits"),
                rng.fork("component"), std::move(site_events)});
    latency_additions_.resize(site_comp_count_);
    components_.reserve(site_comp_count_);
    for (std::size_t ci = 0; ci < site_comp_count_; ++ci) {
      const ComponentId id = topo_.component(ci);
      ComponentParams params = config_.params_for(topo_, ci);
      std::vector<StateInterval> boosts;
      for (const Incident& inc : config_.incidents) {
        const bool affected =
            inc.scope == Incident::Scope::kAccess &&
            (inc.site_name.empty() || topo_.site(id.a).name == inc.site_name);
        if (!affected) continue;
        const double inc_boost =
            inc.loss_rate > 0.0 ? derived_boost(params, inc.loss_rate) : inc.burst_boost;
        if (inc_boost != 1.0) boosts.push_back({inc.start, inc.end(), inc_boost});
        if (inc.added_latency > Duration::zero()) {
          latency_additions_[ci].push_back({inc.start, inc.end(), inc.added_latency});
        }
      }
      components_.emplace_back(params, topo_.site(id.a).lon_deg, sorted(std::move(boosts)),
                               rng.fork("component").fork(ci));
    }
    hop_meta_.resize(site_comp_count_);
    for (std::size_t ci = 0; ci < site_comp_count_; ++ci) {
      const ComponentParams& p = components_[ci].params();
      HopMeta& m = hop_meta_[ci];
      m.fixed_delay = p.fixed_delay;
      m.ln_jitter_median = std::log(p.jitter_median.to_seconds_f());
      m.jitter_sigma = p.jitter_sigma;
      m.is_core = false;
      m.has_additions = !latency_additions_[ci].empty();
    }
    return;
  }

  // Resolve per-component static boosts, latency additions and stretch.
  latency_additions_.resize(n_components);
  core_stretch_.assign(n * (n - 1), 1.0);
  Rng stretch_rng = rng.fork("core-stretch");
  Rng hit_rng_root = rng.fork("event-hits");
  components_.reserve(n_components);

  Rng quality_rng = rng.fork("core-quality");
  for (std::size_t ci = 0; ci < n_components; ++ci) {
    const ComponentId id = topo_.component(ci);
    ComponentParams params = config_.params_for(topo_, ci);
    if (id.kind == ComponentId::Kind::kCore) {
      // Persistent chronic quality of this segment (see config.h).
      const double q = std::min(
          config_.core_quality_max,
          std::exp(config_.core_quality_sigma * quality_rng.fork(ci).normal(0.0, 1.0)));
      params.bursts_per_hour *= q;
      params.base_loss *= std::min(q, 5.0);
    }
    std::vector<StateInterval> boosts;

    if (id.kind == ComponentId::Kind::kCore) {
      // Routing stretch for this ordered pair.
      const std::size_t core_slot = ci - kSiteCompCount * n;
      double stretch = config_.core_stretch_median *
                       std::exp(config_.core_stretch_sigma *
                                stretch_rng.fork(core_slot).normal(0.0, 1.0));
      core_stretch_[core_slot] = std::max(stretch, config_.core_stretch_min);

      // Provider events from either endpoint hit this segment w.p.
      // cross_fraction, decided deterministically per (site, event, segment).
      const double event_boost = derived_boost(params, pe.event_loss_rate);
      boosts.reserve(site_events[id.a].size() + site_events[id.b].size());
      for (NodeId endpoint : {id.a, id.b}) {
        const Rng endpoint_rng = hit_rng_root.fork(endpoint);
        for (const auto& ev : site_events[endpoint]) {
          Rng hit = endpoint_rng.fork(ev.seq).fork(ci);
          if (hit.next_double() < pe.cross_fraction) {
            boosts.push_back({ev.start, ev.end, event_boost});
          }
        }
      }
    }

    // Configured incidents.
    for (std::size_t ii = 0; ii < config_.incidents.size(); ++ii) {
      const Incident& inc = config_.incidents[ii];
      bool affected = false;
      if (id.kind == ComponentId::Kind::kSite) {
        affected = inc.scope == Incident::Scope::kAccess &&
                   (inc.site_name.empty() || topo_.site(id.a).name == inc.site_name);
      } else {
        if (inc.scope == Incident::Scope::kCore) {
          const bool incident_site = inc.site_name.empty() ||
                                     topo_.site(id.a).name == inc.site_name ||
                                     topo_.site(id.b).name == inc.site_name;
          if (incident_site) {
            Rng hit = hit_rng_root.fork("incident").fork(ii).fork(ci);
            affected = hit.next_double() < inc.cross_fraction;
          }
        }
      }
      if (!affected) continue;
      const double inc_boost =
          inc.loss_rate > 0.0 ? derived_boost(params, inc.loss_rate) : inc.burst_boost;
      if (inc_boost != 1.0) {
        boosts.push_back({inc.start, inc.end(), inc_boost});
      }
      if (inc.added_latency > Duration::zero()) {
        latency_additions_[ci].push_back({inc.start, inc.end(), inc.added_latency});
      }
    }

    const NodeId param_site = id.a;
    components_.emplace_back(params, topo_.site(param_site).lon_deg,
                             sorted(std::move(boosts)), rng.fork("component").fork(ci));
  }

  // Resolve the per-hop constants the packet loop reads on every traversal.
  hop_meta_.resize(n_components);
  for (std::size_t ci = 0; ci < n_components; ++ci) {
    const ComponentParams& p = components_[ci].params();
    HopMeta& m = hop_meta_[ci];
    m.fixed_delay = p.fixed_delay;
    m.ln_jitter_median = std::log(p.jitter_median.to_seconds_f());
    m.jitter_sigma = p.jitter_sigma;
    m.is_core = ci >= kSiteCompCount * n;
    m.has_additions = !latency_additions_[ci].empty();
    if (m.is_core) {
      const ComponentId id = topo_.component(ci);
      m.stretched_prop = Duration::from_seconds_f(
          topo_.propagation(id.a, id.b).to_seconds_f() * core_stretch(id.a, id.b));
    }
  }
}

double Network::core_stretch(NodeId src, NodeId dst) const {
  const std::size_t slot = topo_.core_index(src, dst) - kSiteCompCount * topo_.size();
  if (!lazy_) return core_stretch_[slot];
  // Lazy mode skips the dense stretch table; the value is a pure function
  // of the keyed fork, recomputed on demand (same expression as eager).
  const double stretch = config_.core_stretch_median *
                         std::exp(config_.core_stretch_sigma *
                                  lazy_->stretch_rng.fork(slot).normal(0.0, 1.0));
  return std::max(stretch, config_.core_stretch_min);
}

Network::CoreState& Network::core_at(std::size_t ci) {
  assert(lazy_ != nullptr && ci >= site_comp_count_ && ci < topo_.component_count());
  const auto it = cores_.find(ci);
  if (it != cores_.end()) return it->second;

  // Mirrors the eager ctor's per-core construction exactly — same fork
  // keys, same draw order per object; keep the two in sync.
  const ComponentId id = topo_.component(ci);
  ComponentParams params = config_.params_for(topo_, ci);
  const double q = std::min(
      config_.core_quality_max,
      std::exp(config_.core_quality_sigma * lazy_->quality_rng.fork(ci).normal(0.0, 1.0)));
  params.bursts_per_hour *= q;
  params.base_loss *= std::min(q, 5.0);

  std::vector<StateInterval> boosts;
  const auto& pe = config_.provider_events;
  const double event_boost = derived_boost(params, pe.event_loss_rate);
  boosts.reserve(lazy_->site_events[id.a].size() + lazy_->site_events[id.b].size());
  for (NodeId endpoint : {id.a, id.b}) {
    const Rng endpoint_rng = lazy_->hit_root.fork(endpoint);
    for (const auto& ev : lazy_->site_events[endpoint]) {
      Rng hit = endpoint_rng.fork(ev.seq).fork(ci);
      if (hit.next_double() < pe.cross_fraction) {
        boosts.push_back({ev.start, ev.end, event_boost});
      }
    }
  }

  std::vector<LatencyAddition> additions;
  for (std::size_t ii = 0; ii < config_.incidents.size(); ++ii) {
    const Incident& inc = config_.incidents[ii];
    if (inc.scope != Incident::Scope::kCore) continue;
    const bool incident_site = inc.site_name.empty() ||
                               topo_.site(id.a).name == inc.site_name ||
                               topo_.site(id.b).name == inc.site_name;
    if (!incident_site) continue;
    Rng hit = lazy_->hit_root.fork("incident").fork(ii).fork(ci);
    if (hit.next_double() >= inc.cross_fraction) continue;
    const double inc_boost =
        inc.loss_rate > 0.0 ? derived_boost(params, inc.loss_rate) : inc.burst_boost;
    if (inc_boost != 1.0) boosts.push_back({inc.start, inc.end(), inc_boost});
    if (inc.added_latency > Duration::zero()) {
      additions.push_back({inc.start, inc.end(), inc.added_latency});
    }
  }

  CoreState st{ComponentProcess(params, topo_.site(id.a).lon_deg, sorted(std::move(boosts)),
                                lazy_->component_root.fork(ci)),
               HopMeta{}, std::move(additions)};
  st.meta.fixed_delay = params.fixed_delay;
  st.meta.ln_jitter_median = std::log(params.jitter_median.to_seconds_f());
  st.meta.jitter_sigma = params.jitter_sigma;
  st.meta.is_core = true;
  st.meta.has_additions = !st.additions.empty();
  st.meta.stretched_prop = Duration::from_seconds_f(
      topo_.propagation(id.a, id.b).to_seconds_f() * core_stretch(id.a, id.b));
  return cores_.emplace(ci, std::move(st)).first->second;
}

ComponentProcess& Network::component_at(std::size_t ci) {
  if (lazy_ && ci >= site_comp_count_) return core_at(ci).proc;
  return components_[ci];
}

const Network::HopMeta& Network::hop_meta_at(std::size_t ci) {
  if (lazy_ && ci >= site_comp_count_) return core_at(ci).meta;
  return hop_meta_[ci];
}

const std::vector<Network::LatencyAddition>& Network::additions_at(std::size_t ci) {
  if (lazy_ && ci >= site_comp_count_) return core_at(ci).additions;
  return latency_additions_[ci];
}

void Network::enable_sharded_underlay() {
  if (lazy_) {
    throw std::logic_error(
        "enable_sharded_underlay: incompatible with lazy_components (shard plans "
        "pre-partition the full component grid)");
  }
  if (!pkt_rngs_.empty()) return;
  assert(stats_.transmitted == 0 && "enable_sharded_underlay must precede all traffic");
  pkt_rngs_.reserve(components_.size());
  Rng root = pkt_rng_.fork("per-component");
  for (std::size_t ci = 0; ci < components_.size(); ++ci) {
    pkt_rngs_.push_back(root.fork(ci));
  }
}

Duration Network::hop_floor(std::size_t component) const {
  if (lazy_ && component >= site_comp_count_) {
    // Derivable without materializing: quality scaling never touches
    // fixed_delay, and stretch is recomputed from its keyed fork.
    const ComponentId id = topo_.component(component);
    return config_.params_for(topo_, component).fixed_delay +
           Duration::from_seconds_f(topo_.propagation(id.a, id.b).to_seconds_f() *
                                    core_stretch(id.a, id.b));
  }
  const HopMeta& m = hop_meta_[component];
  return m.is_core ? m.fixed_delay + m.stretched_prop : m.fixed_delay;
}

Network::HopOutcome Network::traverse_hop(std::size_t component, TimePoint t) {
  assert(!pkt_rngs_.empty() && "traverse_hop requires the sharded underlay");
  assert(lazy_ == nullptr && "sharded underlay excludes lazy components");
  const ComponentSample s = components_[component].sample(t);
  Rng& rng = pkt_rngs_[component];
  HopOutcome out;
  if (rng.bernoulli(s.drop_prob)) {
    out.dropped = true;
    out.cause =
        s.outage ? DropCause::kOutage : (s.burst ? DropCause::kBurst : DropCause::kRandom);
    return out;
  }
  const HopMeta& m = hop_meta_[component];
  Duration d = m.fixed_delay;
  if (m.is_core) d += m.stretched_prop;
  d += Duration::from_seconds_f(rng.lognormal(m.ln_jitter_median, m.jitter_sigma));
  if (s.queue_delay_mean > Duration::zero()) {
    d += rng.exponential_duration(s.queue_delay_mean);
  }
  if (m.has_additions) {
    for (const auto& add : latency_additions_[component]) {
      if (t >= add.start && t < add.end) d += add.added;
    }
  }
  out.delay = d;
  return out;
}

Duration Network::hop_delay(std::size_t component, const ComponentSample& s, TimePoint t) {
  const HopMeta& m = hop_meta_at(component);
  Duration d = m.fixed_delay;
  if (m.is_core) d += m.stretched_prop;
  // Per-packet jitter.
  d += Duration::from_seconds_f(pkt_rng_.lognormal(m.ln_jitter_median, m.jitter_sigma));
  // Congestion queueing.
  if (s.queue_delay_mean > Duration::zero()) {
    d += pkt_rng_.exponential_duration(s.queue_delay_mean);
  }
  // Incident latency additions.
  if (m.has_additions) {
    for (const auto& add : additions_at(component)) {
      if (t >= add.start && t < add.end) d += add.added;
    }
  }
  return d;
}

TransmitResult Network::transmit(const PathSpec& path, TimePoint send_time, TrafficClass cls) {
  // Roughly-monotone query contract (loss_process.h): out-of-order sends
  // beyond kQuerySafety would read component state whose history has been
  // pruned. Assert in debug; clamp forward gracefully in release.
  assert(send_time + kQuerySafety >= max_send_ && "transmit query too far in the past");
  if (send_time + kQuerySafety < max_send_) send_time = max_send_ - kQuerySafety;
  if (send_time > max_send_) max_send_ = send_time;

  // Sharded mode: keep pregeneration ahead of the watermark (the hook
  // re-arms the threshold), then take the per-component-stream path.
  if (advance_ && max_send_ >= advance_next_) {
    advance_next_ = advance_->advance_to(max_send_);
  }
  if (!pkt_rngs_.empty()) return transmit_sharded(path, send_time, cls);

  ++stats_.transmitted;
  Topology::Hop hops[Topology::kMaxHops];
  const std::size_t n_hops = topo_.hops_into(path, hops);

  // Scripted probe blackhole: control probes with an affected endpoint
  // die here; data packets pass through untouched.
  if (fault_ && cls == TrafficClass::kProbe &&
      (fault_->probe_blackhole(path.src, send_time) ||
       fault_->probe_blackhole(path.dst, send_time))) {
    ++stats_.dropped_injected;
    TransmitResult r;
    r.delivered = false;
    r.cause = DropCause::kInjected;
    r.drop_component = n_hops == 0 ? 0 : hops[0].component;
    return r;
  }

  TimePoint t = send_time;
  for (std::size_t hi = 0; hi < n_hops; ++hi) {
    const std::size_t ci = hops[hi].component;
    if (fault_ && fault_->component_down(ci, t)) {
      ++stats_.dropped_injected;
      TransmitResult r;
      r.delivered = false;
      r.cause = DropCause::kInjected;
      r.drop_component = ci;
      return r;
    }
    const ComponentSample s = component_at(ci).sample(t);
    if (pkt_rng_.bernoulli(s.drop_prob)) {
      TransmitResult r;
      r.delivered = false;
      r.cause = s.outage ? DropCause::kOutage : (s.burst ? DropCause::kBurst : DropCause::kRandom);
      r.drop_component = ci;
      switch (r.cause) {
        case DropCause::kRandom: ++stats_.dropped_random; break;
        case DropCause::kBurst: ++stats_.dropped_burst; break;
        case DropCause::kOutage: ++stats_.dropped_outage; break;
        case DropCause::kNone:
        case DropCause::kInjected: break;
      }
      return r;
    }
    t += hop_delay(ci, s, t);
    // Application-level forwarding turn-around at each intermediate.
    if (hops[hi].forward_after) t += config_.forward_delay;
  }
  ++stats_.delivered;
  TransmitResult r;
  r.delivered = true;
  r.latency = t - send_time;
  return r;
}

TransmitResult Network::transmit_sharded(const PathSpec& path, TimePoint send_time,
                                         TrafficClass cls) {
  // Identical walk to the legacy loop below, with every draw coming from
  // the traversed component's own substream (traverse_hop) — the same
  // queries and draws the PDES engine issues for this packet, so the
  // sequenced and free-running paths share one discipline.
  ++stats_.transmitted;
  Topology::Hop hops[Topology::kMaxHops];
  const std::size_t n_hops = topo_.hops_into(path, hops);

  if (fault_ && cls == TrafficClass::kProbe &&
      (fault_->probe_blackhole(path.src, send_time) ||
       fault_->probe_blackhole(path.dst, send_time))) {
    ++stats_.dropped_injected;
    TransmitResult r;
    r.delivered = false;
    r.cause = DropCause::kInjected;
    r.drop_component = n_hops == 0 ? 0 : hops[0].component;
    return r;
  }

  TimePoint t = send_time;
  for (std::size_t hi = 0; hi < n_hops; ++hi) {
    const std::size_t ci = hops[hi].component;
    if (fault_ && fault_->component_down(ci, t)) {
      ++stats_.dropped_injected;
      TransmitResult r;
      r.delivered = false;
      r.cause = DropCause::kInjected;
      r.drop_component = ci;
      return r;
    }
    const HopOutcome hop = traverse_hop(ci, t);
    if (hop.dropped) {
      TransmitResult r;
      r.delivered = false;
      r.cause = hop.cause;
      r.drop_component = ci;
      switch (r.cause) {
        case DropCause::kRandom: ++stats_.dropped_random; break;
        case DropCause::kBurst: ++stats_.dropped_burst; break;
        case DropCause::kOutage: ++stats_.dropped_outage; break;
        case DropCause::kNone:
        case DropCause::kInjected: break;
      }
      return r;
    }
    t += hop.delay;
    if (hops[hi].forward_after) t += config_.forward_delay;
  }
  ++stats_.delivered;
  TransmitResult r;
  r.delivered = true;
  r.latency = t - send_time;
  return r;
}

Duration Network::base_latency(const PathSpec& path) const {
  const auto hops = topo_.hops(path);
  Duration d = Duration::zero();
  for (const auto& hop : hops) {
    const ComponentId id = topo_.component(hop.component);
    d += config_.params_for(topo_, hop.component).fixed_delay;
    if (id.kind == ComponentId::Kind::kCore) {
      d += Duration::from_seconds_f(topo_.propagation(id.a, id.b).to_seconds_f() *
                                    core_stretch(id.a, id.b));
    }
  }
  d += config_.forward_delay * path.intermediates();
  return d;
}

void Network::save_state(snap::Encoder& e) const {
  e.tag("NETW");
  // RNG discipline marker: a snapshot taken under the sharded underlay
  // carries per-component streams and cannot be read back into a legacy
  // network (or vice versa). Deliberately a bool, not the shard count —
  // the payload is identical at every shard count.
  e.b(sharded_underlay());
  // Lazy-core marker plus the materialized-core set (sorted for
  // determinism). The set is itself a deterministic function of the
  // traffic, so an uninterrupted run and a restored run converge on the
  // same list at the same point.
  e.b(lazy_ != nullptr);
  e.u64(components_.size());
  for (const ComponentProcess& c : components_) c.save_state(e);
  if (lazy_) {
    std::vector<std::size_t> keys;
    keys.reserve(cores_.size());
    for (const auto& [ci, st] : cores_) keys.push_back(ci);
    std::sort(keys.begin(), keys.end());
    e.u64(keys.size());
    for (const std::size_t ci : keys) {
      e.u64(ci);
      cores_.at(ci).proc.save_state(e);
    }
  }
  snap::save_rng(e, pkt_rng_);
  for (const Rng& r : pkt_rngs_) snap::save_rng(e, r);
  e.i64(stats_.transmitted);
  e.i64(stats_.delivered);
  e.i64(stats_.dropped_random);
  e.i64(stats_.dropped_burst);
  e.i64(stats_.dropped_outage);
  e.i64(stats_.dropped_injected);
  e.time(max_send_);
}

void Network::restore_state(snap::Decoder& d) {
  d.expect_tag("NETW");
  const bool sharded = d.b();
  if (sharded != sharded_underlay()) {
    throw snap::SnapshotError(
        std::string("snapshot: RNG discipline mismatch (snapshot is ") +
        (sharded ? "sharded" : "legacy") + ", network is " +
        (sharded_underlay() ? "sharded" : "legacy") + ")");
  }
  const bool lazy = d.b();
  if (lazy != (lazy_ != nullptr)) {
    throw snap::SnapshotError(std::string("snapshot: component materialization mismatch "
                                          "(snapshot is ") +
                              (lazy ? "lazy" : "eager") + ", network is " +
                              (lazy_ ? "lazy" : "eager") + ")");
  }
  const std::uint64_t n = d.u64();
  if (n != components_.size()) {
    throw snap::SnapshotError("snapshot: component count mismatch (snapshot has " +
                              std::to_string(n) + ", network has " +
                              std::to_string(components_.size()) +
                              " — different topology or configuration)");
  }
  for (ComponentProcess& c : components_) c.restore_state(d);
  if (lazy_) {
    // Clear and rebuild the materialized set: each listed core is built
    // fresh from its keyed forks, then overwritten with the saved
    // timeline state.
    cores_.clear();
    const std::uint64_t n_cores = d.count(9);
    std::size_t prev = 0;
    for (std::uint64_t i = 0; i < n_cores; ++i) {
      const std::uint64_t ci = d.u64();
      if (ci < site_comp_count_ || ci >= topo_.component_count() ||
          (i > 0 && ci <= prev)) {
        throw snap::SnapshotError("snapshot: materialized-core list corrupt or unsorted");
      }
      prev = ci;
      core_at(ci).proc.restore_state(d);
    }
  }
  snap::restore_rng(d, pkt_rng_);
  for (Rng& r : pkt_rngs_) snap::restore_rng(d, r);
  stats_.transmitted = d.i64();
  stats_.delivered = d.i64();
  stats_.dropped_random = d.i64();
  stats_.dropped_burst = d.i64();
  stats_.dropped_outage = d.i64();
  stats_.dropped_injected = d.i64();
  max_send_ = d.time();
  // Re-arm pregeneration from scratch: replaying already-generated grid
  // points is a no-op, so the hook converges on the restored watermark.
  advance_next_ = TimePoint::epoch();
}

void Network::check_invariants(std::vector<std::string>& out) const {
  for (std::size_t i = 0; i < components_.size(); ++i) {
    components_[i].check_invariants("component " + std::to_string(i), out);
  }
  if (lazy_) {
    std::vector<std::size_t> keys;
    keys.reserve(cores_.size());
    for (const auto& [ci, st] : cores_) {
      if (ci < site_comp_count_ || ci >= topo_.component_count()) {
        out.push_back("network: materialized core with out-of-range index " +
                      std::to_string(ci));
      }
      keys.push_back(ci);
    }
    std::sort(keys.begin(), keys.end());
    for (const std::size_t ci : keys) {
      cores_.at(ci).proc.check_invariants("component " + std::to_string(ci), out);
    }
  }
  const std::int64_t charged = stats_.delivered + stats_.dropped_random + stats_.dropped_burst +
                               stats_.dropped_outage + stats_.dropped_injected;
  if (charged != stats_.transmitted) {
    out.push_back("network: stats not conserved (" + std::to_string(stats_.transmitted) +
                  " transmitted vs " + std::to_string(charged) + " accounted)");
  }
}

}  // namespace ronpath
