#include "net/scale_topology.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "util/rng.h"

namespace ronpath {
namespace {

struct Metro {
  const char* name;
  double lat_deg;
  double lon_deg;
  bool intl;  // outside North America -> international link classes
};

// World metro areas, roughly ordered by how early they appear as the
// metro count grows: North American backbone cities first (the paper's
// testbed is US-centric), then Europe and Asia-Pacific.
constexpr Metro kMetros[] = {
    {"nyc", 40.71, -74.01, false},    {"bos", 42.36, -71.06, false},
    {"chi", 41.88, -87.63, false},    {"sfo", 37.77, -122.42, false},
    {"sea", 47.61, -122.33, false},   {"lax", 34.05, -118.24, false},
    {"dfw", 32.78, -96.80, false},    {"atl", 33.75, -84.39, false},
    {"iad", 38.90, -77.04, false},    {"den", 39.74, -104.99, false},
    {"yyz", 43.65, -79.38, false},    {"mia", 25.76, -80.19, false},
    {"phx", 33.45, -112.07, false},   {"msp", 44.98, -93.27, false},
    {"slc", 40.76, -111.89, false},   {"pdx", 45.52, -122.68, false},
    {"lon", 51.51, -0.13, true},      {"ams", 52.37, 4.90, true},
    {"fra", 50.11, 8.68, true},       {"par", 48.86, 2.35, true},
    {"mad", 40.42, -3.70, true},      {"mil", 45.46, 9.19, true},
    {"sto", 59.33, 18.07, true},      {"dub", 53.35, -6.26, true},
    {"waw", 52.23, 21.01, true},      {"ath", 37.98, 23.73, true},
    {"tyo", 35.68, 139.69, true},     {"sel", 37.57, 126.98, true},
    {"hkg", 22.32, 114.17, true},     {"sin", 1.35, 103.82, true},
    {"syd", -33.87, 151.21, true},    {"akl", -36.85, 174.76, true},
    {"bom", 19.08, 72.88, true},      {"tpe", 25.03, 121.57, true},
    {"gru", -23.55, -46.63, true},    {"scl", -33.45, -70.67, true},
    {"mex", 19.43, -99.13, false},    {"jnb", -26.20, 28.05, true},
    {"tlv", 32.08, 34.78, true},      {"ist", 41.01, 28.98, true},
};
constexpr std::size_t kMetroCount = sizeof(kMetros) / sizeof(kMetros[0]);

// Weighted access-class mix. North American sites follow roughly the
// Table 1 composition (universities, ISP POPs, companies, consumer
// lines); international metros use the intl classes so params_for's
// intl factors apply.
LinkClass pick_class(bool intl, std::uint64_t roll) {
  if (intl) return roll < 55 ? LinkClass::kIntlUniversity : LinkClass::kIntlIsp;
  if (roll < 18) return LinkClass::kUniversityI2;
  if (roll < 40) return LinkClass::kUniversity;
  if (roll < 55) return LinkClass::kLargeIsp;
  if (roll < 70) return LinkClass::kSmallIsp;
  if (roll < 82) return LinkClass::kCompany;
  return LinkClass::kCableDsl;
}

}  // namespace

Topology scale_topology(const ScaleTopologyParams& params) {
  assert(params.nodes >= 2);
  std::size_t n_metros = params.metros;
  if (n_metros == 0) {
    n_metros = std::clamp<std::size_t>(params.nodes / 12, 4, kMetroCount);
  }
  n_metros = std::min(n_metros, kMetroCount);
  const std::size_t providers = std::max<std::size_t>(params.providers_per_metro, 1);

  const Rng root = Rng(params.seed).fork("scale-topo");
  std::vector<Site> sites;
  sites.reserve(params.nodes);
  for (std::size_t i = 0; i < params.nodes; ++i) {
    // Round-robin metro assignment spreads sites evenly; everything
    // random comes from a per-site fork, so one site's draws never
    // shift another's.
    const std::size_t mi = i % n_metros;
    const Metro& metro = kMetros[mi];
    Rng rng = root.fork(i);

    Site s;
    const std::size_t pi = (i / n_metros) % providers;
    char name[32];
    std::snprintf(name, sizeof name, "m%02zu-p%zu-s%04zu", mi, pi, i);
    s.name = name;
    s.location = metro.name;
    // Sites scatter ~0.3 degrees (roughly 30 km) around the metro
    // center: sub-ms propagation within a metro, realistic wide-area
    // delays across metros.
    s.lat_deg = metro.lat_deg + rng.uniform(-0.3, 0.3);
    s.lon_deg = metro.lon_deg + rng.uniform(-0.3, 0.3);
    s.link_class = pick_class(metro.intl, rng.next_below(100));
    s.in_2002_testbed = false;
    sites.push_back(std::move(s));
  }
  return Topology(std::move(sites));
}

}  // namespace ronpath
