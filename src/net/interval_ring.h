// Flat ring buffer of StateIntervals.
//
// The lazy timeline processes append intervals at the back as simulated
// time advances and prune expired intervals from the front as the
// roughly-monotone query watermark moves. std::deque serves that access
// pattern but pays a chunk-map pointer chase on every element access -
// painful in value_at, which runs on every packet. This ring keeps the
// live window contiguous in one power-of-two vector: push_back and
// pop_front are O(1) amortized, operator[] is a mask and an add, and the
// random-access iterators make the binary-search fallback as cheap as on
// a flat array.
//
// Indexing is relative to the current front (index 0 == oldest retained
// interval), matching how the timeline cursors address it.

#ifndef RONPATH_NET_INTERVAL_RING_H_
#define RONPATH_NET_INTERVAL_RING_H_

#include <cassert>
#include <cstddef>
#include <iterator>
#include <vector>

namespace ronpath {

template <typename T>
class Ring {
 public:
  using value_type = T;

  class const_iterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = const T*;
    using reference = const T&;

    const_iterator() = default;
    const_iterator(const Ring* ring, std::size_t pos) : ring_(ring), pos_(pos) {}

    reference operator*() const { return (*ring_)[pos_]; }
    pointer operator->() const { return &(*ring_)[pos_]; }
    reference operator[](difference_type n) const {
      return (*ring_)[pos_ + static_cast<std::size_t>(n)];
    }

    const_iterator& operator++() { ++pos_; return *this; }
    const_iterator operator++(int) { auto c = *this; ++pos_; return c; }
    const_iterator& operator--() { --pos_; return *this; }
    const_iterator operator--(int) { auto c = *this; --pos_; return c; }
    const_iterator& operator+=(difference_type n) {
      pos_ = static_cast<std::size_t>(static_cast<difference_type>(pos_) + n);
      return *this;
    }
    const_iterator& operator-=(difference_type n) { return *this += -n; }
    friend const_iterator operator+(const_iterator it, difference_type n) { return it += n; }
    friend const_iterator operator+(difference_type n, const_iterator it) { return it += n; }
    friend const_iterator operator-(const_iterator it, difference_type n) { return it -= n; }
    friend difference_type operator-(const_iterator a, const_iterator b) {
      return static_cast<difference_type>(a.pos_) - static_cast<difference_type>(b.pos_);
    }
    friend bool operator==(const_iterator a, const_iterator b) { return a.pos_ == b.pos_; }
    friend auto operator<=>(const_iterator a, const_iterator b) { return a.pos_ <=> b.pos_; }

   private:
    const Ring* ring_ = nullptr;
    std::size_t pos_ = 0;
  };

  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }

  [[nodiscard]] const T& operator[](std::size_t i) const {
    assert(i < count_);
    return buf_[(head_ + i) & mask_];
  }
  [[nodiscard]] T& operator[](std::size_t i) {
    assert(i < count_);
    return buf_[(head_ + i) & mask_];
  }

  [[nodiscard]] const T& front() const { return (*this)[0]; }
  [[nodiscard]] const T& back() const { return (*this)[count_ - 1]; }
  [[nodiscard]] T& back() { return (*this)[count_ - 1]; }

  [[nodiscard]] const_iterator begin() const { return const_iterator(this, 0); }
  [[nodiscard]] const_iterator end() const { return const_iterator(this, count_); }

  void push_back(const T& v) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_) & mask_] = v;
    ++count_;
  }

  void pop_front() {
    assert(count_ > 0);
    head_ = (head_ + 1) & mask_;
    --count_;
  }

  void clear() {
    head_ = 0;
    count_ = 0;
  }

 private:
  void grow() {
    const std::size_t new_cap = buf_.empty() ? 16 : buf_.size() * 2;
    std::vector<T> next(new_cap);
    for (std::size_t i = 0; i < count_; ++i) next[i] = (*this)[i];
    buf_ = std::move(next);
    head_ = 0;
    mask_ = new_cap - 1;
  }

  std::vector<T> buf_;  // capacity always a power of two
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace ronpath

#endif  // RONPATH_NET_INTERVAL_RING_H_
