#include "net/loss_process.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ronpath {
namespace {

// Binary search over merged, disjoint, start-sorted intervals.
const StateInterval* covering(const std::deque<StateInterval>& ivs, TimePoint t) {
  auto it = std::upper_bound(ivs.begin(), ivs.end(), t,
                             [](TimePoint v, const StateInterval& iv) { return v < iv.start; });
  if (it == ivs.begin()) return nullptr;
  --it;
  return (it->end > t) ? &*it : nullptr;
}

double episode_boost_value(const ComponentParams& p) {
  return p.episode_loss_rate > 0.0 ? derived_boost(p, p.episode_loss_rate)
                                   : p.episode_burst_boost;
}

}  // namespace

double diurnal_factor(TimePoint t, double lon_deg, double amplitude) {
  const double utc_hours = t.seconds_since_epoch_f() / 3600.0;
  double local = std::fmod(utc_hours + lon_deg / 15.0, 24.0);
  if (local < 0.0) local += 24.0;
  // Peak near 16:00 local, trough near 04:00.
  return 1.0 + amplitude * std::sin(2.0 * M_PI * (local - 10.0) / 24.0);
}

// --------------------------------------------------------- LazyIntervalProcess

LazyIntervalProcess::LazyIntervalProcess(Duration mean_interarrival, Duration mean_duration,
                                         double value, Rng rng)
    : mean_interarrival_(mean_interarrival),
      mean_duration_(mean_duration),
      value_(value),
      rng_(rng) {
  assert(mean_interarrival_ > Duration::zero());
  assert(mean_duration_ > Duration::zero());
  next_arrival_ = TimePoint::epoch() + rng_.exponential_duration(mean_interarrival_);
}

void LazyIntervalProcess::push_merged(StateInterval iv) {
  if (!intervals_.empty() && iv.start <= intervals_.back().end) {
    intervals_.back().end = std::max(intervals_.back().end, iv.end);
    intervals_.back().value = std::max(intervals_.back().value, iv.value);
    return;
  }
  intervals_.push_back(iv);
}

void LazyIntervalProcess::generate_until(TimePoint t) {
  while (next_arrival_ <= t) {
    const Duration dur = rng_.exponential_duration(mean_duration_);
    push_merged({next_arrival_, next_arrival_ + dur, value_});
    next_arrival_ += rng_.exponential_duration(mean_interarrival_);
  }
  cursor_ = std::max(cursor_, t);
}

void LazyIntervalProcess::prune_before(TimePoint t) {
  while (!intervals_.empty() && intervals_.front().end <= t) intervals_.pop_front();
  pruned_before_ = std::max(pruned_before_, t);
}

double LazyIntervalProcess::value_at(TimePoint t) const {
  assert(t <= cursor_ && "query beyond generated timeline");
  assert(t >= pruned_before_ && "query into pruned history");
  // Release-mode clamp: answer from the nearest retained state rather
  // than fabricating "no interval" for a time we no longer (or do not
  // yet) know about.
  if (t > cursor_) t = cursor_;
  if (t < pruned_before_) t = pruned_before_;
  const StateInterval* iv = covering(intervals_, t);
  return iv ? iv->value : 0.0;
}

void LazyIntervalProcess::collect_edges(TimePoint from, TimePoint to,
                                        std::vector<TimePoint>& out) const {
  for (const auto& iv : intervals_) {
    if (iv.end <= from) continue;
    if (iv.start >= to) break;
    if (iv.start > from && iv.start < to) out.push_back(iv.start);
    if (iv.end > from && iv.end < to) out.push_back(iv.end);
  }
}

// ------------------------------------------------------------ ComponentProcess

ComponentProcess::ComponentProcess(const ComponentParams& params, double site_lon_deg,
                                   std::vector<StateInterval> static_boosts, Rng rng)
    : params_(params),
      site_lon_deg_(site_lon_deg),
      static_boosts_(std::move(static_boosts)),
      episodes_(params.episodes_per_day > 0.0
                    ? Duration::from_seconds_f(86'400.0 / params.episodes_per_day)
                    : Duration::days(36'500),  // ~100 years: never within any run, no int64 overflow
                params.episode_mean, episode_boost_value(params), rng.fork("episodes")),
      outages_(params.outages_per_month > 0.0
                   ? Duration::from_seconds_f(30.0 * 86'400.0 / params.outages_per_month)
                   : Duration::days(36'500),
               params.outage_mean, 1.0, rng.fork("outages")),
      burst_rng_(rng.fork("bursts")) {
  assert(std::is_sorted(static_boosts_.begin(), static_boosts_.end(),
                        [](const StateInterval& a, const StateInterval& b) {
                          return a.start < b.start;
                        }));
}

double ComponentProcess::static_boost_at(TimePoint t) const {
  double boost = 1.0;
  for (const auto& iv : static_boosts_) {
    if (iv.start > t) break;
    if (iv.end > t) boost *= iv.value;
  }
  return boost;
}

double ComponentProcess::rate_per_sec_at(TimePoint t) const {
  const double episode_boost = [&] {
    const double v = episodes_.value_at(t);
    return v > 0.0 ? v : 1.0;
  }();
  return params_.bursts_per_hour / 3600.0 *
         diurnal_factor(t, site_lon_deg_, params_.diurnal_amplitude) * episode_boost *
         static_boost_at(t);
}

void ComponentProcess::push_burst(StateInterval iv) {
  ++generated_bursts_;
  if (!bursts_.empty() && iv.start <= bursts_.back().end) {
    bursts_.back().end = std::max(bursts_.back().end, iv.end);
    bursts_.back().value = std::max(bursts_.back().value, iv.value);
    return;
  }
  bursts_.push_back(iv);
}

void ComponentProcess::generate_until(TimePoint t) {
  const TimePoint target = t + kGenLookahead;
  if (burst_cursor_ >= target) return;

  episodes_.generate_until(target + kGenLookahead);
  outages_.generate_until(target);

  // Piecewise-constant-rate boundaries: hourly diurnal steps plus episode
  // and static-boost edges. Between boundaries the rate is constant and
  // arrivals are exact exponential gaps (memorylessness lets us restart the
  // draw at each boundary).
  std::vector<TimePoint> edges;
  episodes_.collect_edges(burst_cursor_, target, edges);
  for (const auto& iv : static_boosts_) {
    if (iv.start > burst_cursor_ && iv.start < target) edges.push_back(iv.start);
    if (iv.end > burst_cursor_ && iv.end < target) edges.push_back(iv.end);
  }
  const Duration hour = Duration::hours(1);
  for (TimePoint h = TimePoint::epoch() +
                     hour * (burst_cursor_.since_epoch() / hour + 1);
       h < target; h += hour) {
    edges.push_back(h);
  }
  edges.push_back(target);
  std::sort(edges.begin(), edges.end());

  TimePoint cursor = burst_cursor_;
  const double ln_long = std::log(params_.burst_median.to_seconds_f());
  const double ln_short = std::log(params_.short_burst_median.to_seconds_f());
  for (TimePoint edge : edges) {
    if (edge <= cursor) continue;
    // Rate sampled just inside the segment (diurnal drift within an hour is
    // negligible at these rates).
    const double rate = rate_per_sec_at(cursor);
    if (rate > 0.0) {
      TimePoint s = cursor;
      for (;;) {
        s += Duration::from_seconds_f(burst_rng_.exponential(1.0 / rate));
        if (s >= edge) break;
        const bool micro = burst_rng_.bernoulli(params_.short_burst_fraction);
        const double dur_s =
            micro ? burst_rng_.lognormal(ln_short, params_.short_burst_sigma)
                  : burst_rng_.lognormal(ln_long, params_.burst_sigma);
        push_burst({s, s + Duration::from_seconds_f(dur_s), params_.burst_drop_prob});
      }
    }
    cursor = edge;
  }
  burst_cursor_ = target;
}

double ComponentProcess::burst_drop_at(TimePoint t) const {
  const StateInterval* iv = covering(bursts_, t);
  return iv ? iv->value : 0.0;
}

ComponentSample ComponentProcess::sample(TimePoint t) {
  assert(t + kQuerySafety >= max_query_ && "query too far in the past");
  if (t + kQuerySafety < max_query_) t = max_query_ - kQuerySafety;  // release clamp
  generate_until(t);
  if (t > max_query_) {
    max_query_ = t;
    const TimePoint watermark = max_query_ - kQuerySafety;
    if (!bursts_.empty() && bursts_.front().end + Duration::minutes(5) < watermark) {
      while (!bursts_.empty() && bursts_.front().end <= watermark) bursts_.pop_front();
      episodes_.prune_before(watermark);
      outages_.prune_before(watermark);
    }
  }

  ComponentSample s;
  if (outages_.active_at(t)) {
    s.outage = true;
    s.drop_prob = 1.0;
    return s;
  }
  s.episode = episodes_.value_at(t) > 0.0;
  const double burst_drop = burst_drop_at(t);
  if (burst_drop > 0.0) {
    s.burst = true;
    s.drop_prob = burst_drop;
    s.queue_delay_mean = params_.burst_queue_mean;
  } else {
    s.drop_prob = params_.base_loss;
    if (s.episode) s.queue_delay_mean = params_.episode_queue_mean;
  }
  return s;
}

}  // namespace ronpath
