#include "net/loss_process.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "snapshot/codec.h"

namespace ronpath {
namespace {

void save_ring(snap::Encoder& e, const Ring<StateInterval>& ring) {
  e.u64(ring.size());
  for (const StateInterval& iv : ring) {
    e.time(iv.start);
    e.time(iv.end);
    e.f64(iv.value);
  }
}

void restore_ring(snap::Decoder& d, Ring<StateInterval>& ring) {
  ring.clear();
  const std::uint64_t n = d.count(24);
  for (std::uint64_t i = 0; i < n; ++i) {
    StateInterval iv;
    iv.start = d.time();
    iv.end = d.time();
    iv.value = d.f64();
    ring.push_back(iv);
  }
}

void check_interval_ring(const Ring<StateInterval>& ring, const std::string& who,
                         std::vector<std::string>& out) {
  for (std::size_t i = 0; i < ring.size(); ++i) {
    if (ring[i].end <= ring[i].start) {
      out.push_back(who + ": interval " + std::to_string(i) + " is empty or inverted");
    }
    // Merged timeline: successive intervals are strictly disjoint.
    if (i > 0 && ring[i].start <= ring[i - 1].end) {
      out.push_back(who + ": intervals " + std::to_string(i - 1) + "/" + std::to_string(i) +
                    " overlap (merge invariant broken)");
    }
  }
}


// Binary search over merged, disjoint, start-sorted intervals.
const StateInterval* covering(const Ring<StateInterval>& ivs, TimePoint t) {
  auto it = std::upper_bound(ivs.begin(), ivs.end(), t,
                             [](TimePoint v, const StateInterval& iv) { return v < iv.start; });
  if (it == ivs.begin()) return nullptr;
  --it;
  return (it->end > t) ? &*it : nullptr;
}

// Cursor seek shared by the timeline lookups: first index with end > t,
// starting from hint `i`. Forward motion is a linear scan (amortized O(1)
// under the roughly-monotone contract); a backward jump falls back to
// binary search over the prefix, so arbitrary backjumps stay correct,
// just slower.
std::size_t seek_ring(const Ring<StateInterval>& ivs, TimePoint t, std::size_t i) {
  const std::size_t n = ivs.size();
  if (i > n) i = n;
  while (i < n && ivs[i].end <= t) ++i;
  if (i > 0 && ivs[i - 1].end > t) {
    i = static_cast<std::size_t>(
        std::partition_point(ivs.begin(), ivs.begin() + static_cast<std::ptrdiff_t>(i),
                             [t](const StateInterval& iv) { return iv.end <= t; }) -
        ivs.begin());
  }
  return i;
}

double episode_boost_value(const ComponentParams& p) {
  return p.episode_loss_rate > 0.0 ? derived_boost(p, p.episode_loss_rate)
                                   : p.episode_burst_boost;
}

}  // namespace

double diurnal_factor(TimePoint t, double lon_deg, double amplitude) {
  const double utc_hours = t.seconds_since_epoch_f() / 3600.0;
  double local = std::fmod(utc_hours + lon_deg / 15.0, 24.0);
  if (local < 0.0) local += 24.0;
  // Peak near 16:00 local, trough near 04:00.
  return 1.0 + amplitude * std::sin(2.0 * M_PI * (local - 10.0) / 24.0);
}

std::vector<BoostSegment> flatten_boosts(const std::vector<StateInterval>& boosts) {
  std::vector<TimePoint> bounds;
  bounds.reserve(boosts.size() * 2);
  for (const auto& iv : boosts) {
    bounds.push_back(iv.start);
    bounds.push_back(iv.end);
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  std::vector<BoostSegment> segs;
  segs.reserve(bounds.size());
  // The covering set is constant between boundaries, so evaluating the
  // reference product at each boundary yields the segment's exact value.
  for (TimePoint b : bounds) segs.push_back({b, boost_at_reference(boosts, b)});
  return segs;
}

double boost_at_reference(const std::vector<StateInterval>& boosts, TimePoint t) {
  double boost = 1.0;
  for (const auto& iv : boosts) {
    if (iv.start > t) break;
    if (iv.end > t) boost *= iv.value;
  }
  return boost;
}

// --------------------------------------------------------- LazyIntervalProcess

LazyIntervalProcess::LazyIntervalProcess(Duration mean_interarrival, Duration mean_duration,
                                         double value, Rng rng)
    : mean_interarrival_(mean_interarrival),
      mean_duration_(mean_duration),
      value_(value),
      rng_(rng) {
  assert(mean_interarrival_ > Duration::zero());
  assert(mean_duration_ > Duration::zero());
  next_arrival_ = TimePoint::epoch() + rng_.exponential_duration(mean_interarrival_);
}

void LazyIntervalProcess::push_merged(StateInterval iv) {
  if (!intervals_.empty() && iv.start <= intervals_.back().end) {
    intervals_.back().end = std::max(intervals_.back().end, iv.end);
    intervals_.back().value = std::max(intervals_.back().value, iv.value);
    return;
  }
  intervals_.push_back(iv);
}

void LazyIntervalProcess::generate_until(TimePoint t) {
  while (next_arrival_ <= t) {
    const Duration dur = rng_.exponential_duration(mean_duration_);
    push_merged({next_arrival_, next_arrival_ + dur, value_});
    next_arrival_ += rng_.exponential_duration(mean_interarrival_);
  }
  cursor_ = std::max(cursor_, t);
}

void LazyIntervalProcess::prune_before(TimePoint t) {
  while (!intervals_.empty() && intervals_.front().end <= t) {
    intervals_.pop_front();
    ++popped_;
  }
  pruned_before_ = std::max(pruned_before_, t);
}

TimePoint LazyIntervalProcess::checked(TimePoint t) const {
  assert(t <= cursor_ && "query beyond generated timeline");
  assert(t >= pruned_before_ && "query into pruned history");
  // Release-mode clamp: answer from the nearest retained state rather
  // than fabricating "no interval" for a time we no longer (or do not
  // yet) know about.
  if (t > cursor_) t = cursor_;
  if (t < pruned_before_) t = pruned_before_;
  return t;
}

std::size_t LazyIntervalProcess::seek(TimePoint t, std::size_t i) const {
  return seek_ring(intervals_, t, i);
}

double LazyIntervalProcess::value_at(TimePoint t, TimelineCursor& cursor) const {
  t = checked(t);
  std::size_t i =
      cursor.idx > popped_ ? static_cast<std::size_t>(cursor.idx - popped_) : 0;
  i = seek(t, i);
  cursor.idx = popped_ + i;
  // seek() guarantees intervals_[i].end > t, so covered iff start <= t.
  if (i < intervals_.size() && intervals_[i].start <= t) return intervals_[i].value;
  return 0.0;
}

double LazyIntervalProcess::value_at_reference(TimePoint t) const {
  t = checked(t);
  const StateInterval* iv = covering(intervals_, t);
  return iv ? iv->value : 0.0;
}

void LazyIntervalProcess::collect_edges(TimePoint from, TimePoint to,
                                        std::vector<TimePoint>& out) const {
  auto it = std::partition_point(intervals_.begin(), intervals_.end(),
                                 [from](const StateInterval& iv) { return iv.end <= from; });
  for (; it != intervals_.end(); ++it) {
    const StateInterval& iv = *it;
    if (iv.start >= to) break;
    if (iv.start > from && iv.start < to) out.push_back(iv.start);
    if (iv.end > from && iv.end < to) out.push_back(iv.end);
  }
}

TimePoint LazyIntervalProcess::next_edge_after(TimePoint t, TimelineCursor& cursor) const {
  std::size_t i =
      cursor.idx > popped_ ? static_cast<std::size_t>(cursor.idx - popped_) : 0;
  i = seek(t, i);
  cursor.idx = popped_ + i;
  if (i >= intervals_.size()) return cursor_;
  const StateInterval& iv = intervals_[i];
  // seek() guarantees iv.end > t; the first edge after t is iv's start if
  // t precedes the interval, else its end.
  return iv.start > t ? iv.start : iv.end;
}

void LazyIntervalProcess::save_state(snap::Encoder& e) const {
  e.tag("LAZY");
  snap::save_rng(e, rng_);
  e.time(cursor_);
  e.time(next_arrival_);
  e.time(pruned_before_);
  e.u64(popped_);
  save_ring(e, intervals_);
  e.u64(default_cursor_.idx);
}

void LazyIntervalProcess::restore_state(snap::Decoder& d) {
  d.expect_tag("LAZY");
  snap::restore_rng(d, rng_);
  cursor_ = d.time();
  next_arrival_ = d.time();
  pruned_before_ = d.time();
  popped_ = d.u64();
  restore_ring(d, intervals_);
  default_cursor_.idx = d.u64();
}

void LazyIntervalProcess::check_invariants(const std::string& who,
                                           std::vector<std::string>& out) const {
  check_interval_ring(intervals_, who, out);
  if (pruned_before_ > cursor_) {
    out.push_back(who + ": prune watermark ahead of the generated horizon");
  }
  // generate_until loops while next_arrival_ <= t, so the first unrealized
  // arrival always sits at or beyond the generated horizon.
  if (next_arrival_ < cursor_) {
    out.push_back(who + ": next arrival behind the generated horizon");
  }
  if (!intervals_.empty() && intervals_.front().end <= pruned_before_) {
    out.push_back(who + ": retained interval wholly behind the prune watermark");
  }
  for (std::size_t i = 0; i < intervals_.size(); ++i) {
    if (intervals_[i].value != value_) {
      out.push_back(who + ": interval " + std::to_string(i) + " carries a foreign value");
    }
  }
}

bool LazyIntervalProcess::has_edge_in(TimePoint from, TimePoint to,
                                      TimelineCursor& cursor) const {
  std::size_t i =
      cursor.idx > popped_ ? static_cast<std::size_t>(cursor.idx - popped_) : 0;
  i = seek(from, i);
  cursor.idx = popped_ + i;
  if (i >= intervals_.size()) return false;
  // Intervals are merged and disjoint, so only the first one with
  // end > from can contribute an edge inside (from, to): if it covers the
  // whole window, the next interval starts at or beyond `to`.
  const StateInterval& iv = intervals_[i];
  if (iv.start >= to) return false;
  if (iv.start > from) return true;
  return iv.end < to;
}

// ------------------------------------------------------------ ComponentProcess

ComponentProcess::ComponentProcess(const ComponentParams& params, double site_lon_deg,
                                   std::vector<StateInterval> static_boosts, Rng rng)
    : params_(params),
      site_lon_deg_(site_lon_deg),
      static_boosts_(std::move(static_boosts)),
      episodes_(params.episodes_per_day > 0.0
                    ? Duration::from_seconds_f(86'400.0 / params.episodes_per_day)
                    : Duration::days(36'500),  // ~100 years: never within any run, no int64 overflow
                params.episode_mean, episode_boost_value(params), rng.fork("episodes")),
      outages_(params.outages_per_month > 0.0
                   ? Duration::from_seconds_f(30.0 * 86'400.0 / params.outages_per_month)
                   : Duration::days(36'500),
               params.outage_mean, 1.0, rng.fork("outages")),
      burst_rng_(rng.fork("bursts")) {
  assert(std::is_sorted(static_boosts_.begin(), static_boosts_.end(),
                        [](const StateInterval& a, const StateInterval& b) {
                          return a.start < b.start;
                        }));
  boost_segments_ = flatten_boosts(static_boosts_);
  static_edges_.reserve(static_boosts_.size() * 2);
  for (const auto& iv : static_boosts_) {
    static_edges_.push_back(iv.start);
    static_edges_.push_back(iv.end);
  }
  std::sort(static_edges_.begin(), static_edges_.end());
  base_rate_per_sec_ = params_.bursts_per_hour / 3600.0;
  rate_upper_factor_ = base_rate_per_sec_ * (1.0 + params_.diurnal_amplitude);
  ln_burst_median_ = std::log(params_.burst_median.to_seconds_f());
  ln_short_burst_median_ = std::log(params_.short_burst_median.to_seconds_f());
}

double ComponentProcess::static_boost_at(TimePoint t) {
  const auto& segs = boost_segments_;
  if (segs.empty() || t < segs.front().start) {
    boost_seg_idx_ = 0;
    return 1.0;
  }
  std::size_t i = boost_seg_idx_;
  if (i >= segs.size()) i = segs.size() - 1;
  if (segs[i].start > t) {
    // Backward jump: binary search for the last segment starting at or
    // before t (one exists: t >= segs.front().start).
    i = static_cast<std::size_t>(
            std::upper_bound(segs.begin(), segs.end(), t,
                             [](TimePoint v, const BoostSegment& s) { return v < s.start; }) -
            segs.begin()) -
        1;
  } else {
    while (i + 1 < segs.size() && segs[i + 1].start <= t) ++i;
  }
  boost_seg_idx_ = i;
  return segs[i].value;
}

double ComponentProcess::rate_per_sec_at(TimePoint t) {
  const double episode_boost = [&] {
    const double v = episodes_.value_at(t, episode_gen_cursor_);
    return v > 0.0 ? v : 1.0;
  }();
  return params_.bursts_per_hour / 3600.0 *
         diurnal_factor(t, site_lon_deg_, params_.diurnal_amplitude) * episode_boost *
         static_boost_at(t);
}

void ComponentProcess::push_burst(StateInterval iv) {
  ++generated_bursts_;
  if (!bursts_.empty() && iv.start <= bursts_.back().end) {
    bursts_.back().end = std::max(bursts_.back().end, iv.end);
    bursts_.back().value = std::max(bursts_.back().value, iv.value);
    return;
  }
  bursts_.push_back(iv);
}

void ComponentProcess::generate_segment(TimePoint from, TimePoint to) {
  if (to <= from) return;

  // rate < 0 means "exact rate not yet evaluated". For amplitude < 1 the
  // diurnal factor is strictly positive, so the exact rate is zero iff
  // base * episode_boost * static_boost is (all factors are non-negative
  // and orders of magnitude away from underflow), and we can both skip
  // zero-rate segments and bound the rate from above without touching the
  // sin. For amplitude >= 1 the diurnal term itself can zero or negate
  // the rate, so evaluate it exactly up front as the reference does.
  double rate = -1.0;
  double rate_upper = 0.0;
  if (params_.diurnal_amplitude < 1.0) {
    // The episode*static product is piecewise constant, so cache it with
    // an exact validity horizon (the next episode or static edge) and
    // recompute only when generation crosses an edge. `from` is monotone
    // across calls, and both factor lookups return the identical doubles
    // anywhere inside the cached segment, so the cached products are
    // bit-identical to recomputing them here.
    if (from >= ebsb_valid_until_) {
      const double v = episodes_.value_at(from, episode_gen_cursor_);
      const double eb = v > 0.0 ? v : 1.0;
      const double sb = static_boost_at(from);
      cached_rate_zero_ = base_rate_per_sec_ * eb * sb == 0.0;
      cached_rate_upper_ = rate_upper_factor_ * eb * sb;
      TimePoint next_change = episodes_.next_edge_after(from, episode_gen_cursor_);
      while (static_edge_idx_ < static_edges_.size() &&
             static_edges_[static_edge_idx_] <= from) {
        ++static_edge_idx_;
      }
      if (static_edge_idx_ < static_edges_.size()) {
        next_change = std::min(next_change, static_edges_[static_edge_idx_]);
      }
      ebsb_valid_until_ = next_change;
    }
    if (cached_rate_zero_) return;  // exact rate is 0: no draws
    rate_upper = cached_rate_upper_;
  } else {
    rate = rate_per_sec_at(from);
    if (rate <= 0.0) return;
  }

  TimePoint s = from;
  for (;;) {
    // Replicates Rng::exponential's guarded uniform draw so the stream
    // stays aligned even on iterations that never take the log below.
    double u = burst_rng_.next_double();
    while (u <= 0.0) u = burst_rng_.next_double();

    if (rate < 0.0) {
      // No-arrival proof from the raw draw: the next gap clears the
      // segment iff u <= e^(-gap*rate), and e^(-x) >= 1-x, so
      // u < 1 - gap*rate_upper (minus a margin that swamps every rounding
      // error in the chain) guarantees it for any rate <= rate_upper. The
      // reference would discard the drawn arrival time too, so skipping
      // the log -- and the sin inside the exact rate -- changes no
      // observable state. Ambiguous draws (probability ~gap*rate) fall
      // through to the exact evaluation.
      const double x_upper = (to - s).to_seconds_f() * rate_upper;
      if (u < 1.0 - x_upper - 1e-9) return;
      rate = rate_per_sec_at(from);
      if (rate <= 0.0) return;  // unreachable (base > 0, amplitude < 1); defensive
    }
    const double mean = 1.0 / rate;
    s += Duration::from_seconds_f(-mean * std::log(u));
    if (s >= to) return;
    const bool micro = burst_rng_.bernoulli(params_.short_burst_fraction);
    const double dur_s =
        micro ? burst_rng_.lognormal(ln_short_burst_median_, params_.short_burst_sigma)
              : burst_rng_.lognormal(ln_burst_median_, params_.burst_sigma);
    push_burst({s, s + Duration::from_seconds_f(dur_s), params_.burst_drop_prob});
  }
}

void ComponentProcess::generate_until(TimePoint t) {
  const TimePoint target = t + kGenLookahead;
  if (burst_cursor_ >= target) return;

  episodes_.generate_until(target + kGenLookahead);
  outages_.generate_until(target);

  // Piecewise-constant-rate boundaries: hourly diurnal steps plus episode
  // and static-boost edges. Between boundaries the rate is constant and
  // arrivals are exact exponential gaps (memorylessness lets us restart
  // the draw at each boundary). The common generation window contains no
  // boundary at all -- detect that with O(1) cursor checks and run the
  // single segment directly, skipping the edge buffer and sort.
  if (next_hour_edge_ <= burst_cursor_) {
    const Duration hour = Duration::hours(1);
    next_hour_edge_ =
        TimePoint::epoch() + hour * (burst_cursor_.since_epoch() / hour + 1);
  }
  while (static_edge_idx_ < static_edges_.size() &&
         static_edges_[static_edge_idx_] <= burst_cursor_) {
    ++static_edge_idx_;
  }

  // `target <= ebsb_valid_until_` certifies no episode edge in the window
  // without touching the episode timeline: the cached horizon is a lower
  // bound on the next episode edge, and intervals generated since can only
  // start beyond it (next_edge_after's contract).
  if (next_hour_edge_ >= target &&
      (static_edge_idx_ >= static_edges_.size() ||
       static_edges_[static_edge_idx_] >= target) &&
      (target <= ebsb_valid_until_ ||
       !episodes_.has_edge_in(burst_cursor_, target, episode_gen_cursor_))) {
    generate_segment(burst_cursor_, target);
    burst_cursor_ = target;
    return;
  }

  edges_scratch_.clear();
  episodes_.collect_edges(burst_cursor_, target, edges_scratch_);
  for (const auto& iv : static_boosts_) {
    if (iv.start > burst_cursor_ && iv.start < target) edges_scratch_.push_back(iv.start);
    if (iv.end > burst_cursor_ && iv.end < target) edges_scratch_.push_back(iv.end);
  }
  const Duration hour = Duration::hours(1);
  for (TimePoint h = TimePoint::epoch() +
                     hour * (burst_cursor_.since_epoch() / hour + 1);
       h < target; h += hour) {
    edges_scratch_.push_back(h);
  }
  edges_scratch_.push_back(target);
  std::sort(edges_scratch_.begin(), edges_scratch_.end());

  TimePoint cursor = burst_cursor_;
  for (TimePoint edge : edges_scratch_) {
    if (edge <= cursor) continue;
    generate_segment(cursor, edge);
    cursor = edge;
  }
  burst_cursor_ = target;
}

double ComponentProcess::burst_drop_at(TimePoint t) const {
  std::size_t i = burst_query_cursor_.idx > bursts_popped_
                      ? static_cast<std::size_t>(burst_query_cursor_.idx - bursts_popped_)
                      : 0;
  i = seek_ring(bursts_, t, i);
  burst_query_cursor_.idx = bursts_popped_ + i;
  if (i < bursts_.size() && bursts_[i].start <= t) return bursts_[i].value;
  return 0.0;
}

double ComponentProcess::burst_drop_at_reference(TimePoint t) const {
  const StateInterval* iv = covering(bursts_, t);
  return iv ? iv->value : 0.0;
}

template <bool kReference>
ComponentSample ComponentProcess::sample_impl(TimePoint t) {
  assert(t + kQuerySafety >= max_query_ && "query too far in the past");
  if (t + kQuerySafety < max_query_) t = max_query_ - kQuerySafety;  // release clamp
  generate_until(t);
  if (t > max_query_) {
    max_query_ = t;
    const TimePoint watermark = max_query_ - kQuerySafety;
    if (!bursts_.empty() && bursts_.front().end + Duration::minutes(5) < watermark) {
      while (!bursts_.empty() && bursts_.front().end <= watermark) {
        bursts_.pop_front();
        ++bursts_popped_;
      }
      episodes_.prune_before(watermark);
      outages_.prune_before(watermark);
    }
  }

  ComponentSample s;
  const double outage_v = kReference ? outages_.value_at_reference(t) : outages_.value_at(t);
  if (outage_v != 0.0) {
    s.outage = true;
    s.drop_prob = 1.0;
    return s;
  }
  const double episode_v =
      kReference ? episodes_.value_at_reference(t) : episodes_.value_at(t);
  s.episode = episode_v > 0.0;
  const double burst_drop = kReference ? burst_drop_at_reference(t) : burst_drop_at(t);
  if (burst_drop > 0.0) {
    s.burst = true;
    s.drop_prob = burst_drop;
    s.queue_delay_mean = params_.burst_queue_mean;
  } else {
    s.drop_prob = params_.base_loss;
    if (s.episode) s.queue_delay_mean = params_.episode_queue_mean;
  }
  return s;
}

ComponentSample ComponentProcess::sample(TimePoint t) { return sample_impl<false>(t); }

ComponentSample ComponentProcess::sample_reference(TimePoint t) {
  return sample_impl<true>(t);
}

void ComponentProcess::save_state(snap::Encoder& e) const {
  e.tag("COMP");
  e.u64(boost_seg_idx_);
  e.u64(static_edge_idx_);
  episodes_.save_state(e);
  outages_.save_state(e);
  e.u64(episode_gen_cursor_.idx);
  snap::save_rng(e, burst_rng_);
  e.time(burst_cursor_);
  e.time(ebsb_valid_until_);
  e.f64(cached_rate_upper_);
  e.b(cached_rate_zero_);
  e.time(next_hour_edge_);
  save_ring(e, bursts_);
  e.u64(bursts_popped_);
  e.u64(burst_query_cursor_.idx);
  e.u64(generated_bursts_);
  e.time(max_query_);
}

void ComponentProcess::restore_state(snap::Decoder& d) {
  d.expect_tag("COMP");
  boost_seg_idx_ = d.u64();
  static_edge_idx_ = d.u64();
  episodes_.restore_state(d);
  outages_.restore_state(d);
  episode_gen_cursor_.idx = d.u64();
  snap::restore_rng(d, burst_rng_);
  burst_cursor_ = d.time();
  ebsb_valid_until_ = d.time();
  cached_rate_upper_ = d.f64();
  cached_rate_zero_ = d.b();
  next_hour_edge_ = d.time();
  restore_ring(d, bursts_);
  bursts_popped_ = d.u64();
  burst_query_cursor_.idx = d.u64();
  generated_bursts_ = d.u64();
  max_query_ = d.time();
}

void ComponentProcess::check_invariants(const std::string& who,
                                        std::vector<std::string>& out) const {
  episodes_.check_invariants(who + ".episodes", out);
  outages_.check_invariants(who + ".outages", out);
  check_interval_ring(bursts_, who + ".bursts", out);
  // generate_until(t) runs the burst chain to t + lookahead, the episode
  // timeline one lookahead further, and the outage timeline to the same
  // target — so the horizons are totally ordered once anything ran.
  if (episodes_.generated_until() < burst_cursor_) {
    out.push_back(who + ": episode horizon behind the burst horizon");
  }
  if (outages_.generated_until() < burst_cursor_) {
    out.push_back(who + ": outage horizon behind the burst horizon");
  }
  if (max_query_ > burst_cursor_) {
    out.push_back(who + ": query watermark beyond the generated burst horizon");
  }
  if (boost_seg_idx_ > boost_segments_.size() ||
      (boost_seg_idx_ == boost_segments_.size() && !boost_segments_.empty())) {
    out.push_back(who + ": static boost segment cursor out of range");
  }
  if (static_edge_idx_ > static_edges_.size()) {
    out.push_back(who + ": static edge cursor out of range");
  }
}

}  // namespace ronpath
