// Per-component stochastic loss and delay processes.
//
// Each underlay component owns a ComponentProcess composed of:
//   * a lazy Poisson OUTAGE process (drop probability 1 while active),
//   * a lazy Poisson EPISODE process (multiplies burst arrival rate),
//   * a BURST process: non-homogeneous Poisson arrivals whose rate is
//     base * diurnal(t) * episode_boost(t) * static_boost(t), with
//     lognormal durations and a fixed in-burst drop probability.
//
// Timelines are generated lazily and deterministically: the interval
// layout is a pure function of the component's forked RNG stream, not of
// when or how often it is queried. Two packets querying the same instant
// always see the same burst/episode/outage state - the property that
// makes conditional-loss measurements meaningful.
//
// Queries must be "roughly monotone": each query may lag the furthest
// query seen so far by at most kQuerySafety (packets in flight plus probe
// pair gaps). Intervals wholly older than that are pruned, bounding
// memory over arbitrarily long runs.

#ifndef RONPATH_NET_LOSS_PROCESS_H_
#define RONPATH_NET_LOSS_PROCESS_H_

#include <deque>
#include <vector>

#include "net/config.h"
#include "util/rng.h"
#include "util/time.h"

namespace ronpath {

// Maximum allowed backwards distance of a query from the furthest query.
inline constexpr Duration kQuerySafety = Duration::seconds(30);
// How far beyond the queried time the generators run ahead.
inline constexpr Duration kGenLookahead = Duration::seconds(60);

struct StateInterval {
  TimePoint start;
  TimePoint end;
  double value = 1.0;  // episode/static: rate boost; burst: drop prob
};

// Homogeneous-rate lazy Poisson interval process (episodes, outages).
// Overlapping intervals are merged (value = max).
class LazyIntervalProcess {
 public:
  // `mean_interarrival` between interval starts; duration ~ Exp(mean_duration).
  LazyIntervalProcess(Duration mean_interarrival, Duration mean_duration, double value,
                      Rng rng);

  void generate_until(TimePoint t);
  void prune_before(TimePoint t);

  // Value of the interval covering t, or 0.0 if none. generate_until(t)
  // must have been called with a time >= t, and t must not precede the
  // pruned history (prune_before watermark). Violations assert in debug
  // builds; release builds clamp t into the valid [pruned, generated]
  // range so a badly out-of-order query degrades to the nearest known
  // state instead of silently reporting "no interval".
  [[nodiscard]] double value_at(TimePoint t) const;
  [[nodiscard]] bool active_at(TimePoint t) const { return value_at(t) != 0.0; }

  // Edges (starts and ends) in [from, to), used by the burst generator to
  // keep its piecewise-constant rate segments exact.
  void collect_edges(TimePoint from, TimePoint to, std::vector<TimePoint>& out) const;

  [[nodiscard]] const std::deque<StateInterval>& intervals() const { return intervals_; }
  [[nodiscard]] TimePoint generated_until() const { return cursor_; }

 private:
  void push_merged(StateInterval iv);

  Duration mean_interarrival_;
  Duration mean_duration_;
  double value_;
  Rng rng_;
  TimePoint cursor_;         // timeline generated up to here
  TimePoint next_arrival_;   // first arrival at or beyond cursor_
  TimePoint pruned_before_;  // history strictly before here is gone
  std::deque<StateInterval> intervals_;
};

// What a packet experiences when traversing a component at an instant.
struct ComponentSample {
  double drop_prob = 0.0;      // probability this packet is dropped here
  bool outage = false;         // inside a total outage
  bool burst = false;          // inside a loss burst
  bool episode = false;        // inside a congestion episode
  Duration queue_delay_mean;   // mean extra queueing delay to draw from
};

class ComponentProcess {
 public:
  // `static_boosts`: pre-resolved rate-boost intervals (provider events,
  // configured incidents), sorted by start, possibly overlapping.
  // `site_lon_deg` drives the diurnal phase.
  ComponentProcess(const ComponentParams& params, double site_lon_deg,
                   std::vector<StateInterval> static_boosts, Rng rng);

  // State of the component for a packet arriving at time t.
  [[nodiscard]] ComponentSample sample(TimePoint t);

  [[nodiscard]] const ComponentParams& params() const { return params_; }

  // Introspection for tests: burst/episode/outage interval counts so far.
  [[nodiscard]] std::size_t generated_bursts() const { return generated_bursts_; }

 private:
  void generate_until(TimePoint t);
  [[nodiscard]] double static_boost_at(TimePoint t) const;
  [[nodiscard]] double rate_per_sec_at(TimePoint t) const;
  void push_burst(StateInterval iv);
  [[nodiscard]] double burst_drop_at(TimePoint t) const;

  ComponentParams params_;
  double site_lon_deg_;
  std::vector<StateInterval> static_boosts_;

  LazyIntervalProcess episodes_;
  LazyIntervalProcess outages_;

  Rng burst_rng_;
  TimePoint burst_cursor_;
  std::deque<StateInterval> bursts_;
  std::size_t generated_bursts_ = 0;

  TimePoint max_query_;
};

}  // namespace ronpath

#endif  // RONPATH_NET_LOSS_PROCESS_H_
