// Per-component stochastic loss and delay processes.
//
// Each underlay component owns a ComponentProcess composed of:
//   * a lazy Poisson OUTAGE process (drop probability 1 while active),
//   * a lazy Poisson EPISODE process (multiplies burst arrival rate),
//   * a BURST process: non-homogeneous Poisson arrivals whose rate is
//     base * diurnal(t) * episode_boost(t) * static_boost(t), with
//     lognormal durations and a fixed in-burst drop probability.
//
// Timelines are generated lazily and deterministically: the interval
// layout is a pure function of the component's forked RNG stream and the
// (deterministic) sequence of generation horizons, not of how often it is
// queried. Two packets querying the same instant always see the same
// burst/episode/outage state - the property that makes conditional-loss
// measurements meaningful.
//
// Queries must be "roughly monotone": each query may lag the furthest
// query seen so far by at most kQuerySafety (packets in flight plus probe
// pair gaps). Intervals wholly older than that are pruned, bounding
// memory over arbitrarily long runs.
//
// Hot path (see DESIGN.md "Hot path"): the roughly-monotone contract lets
// every per-packet lookup ride a cached cursor that only moves forward -
// amortized O(1) - falling back to binary search on the bounded backward
// jumps. Timelines live in flat ring buffers (interval_ring.h), and the
// burst generator proves "no arrival in this window" from a raw uniform
// draw whenever it can, skipping the log/sin evaluations entirely while
// consuming the exact same RNG stream. All observable state is
// bit-identical to the straightforward implementation; a retained set of
// *_reference lookups pins that in tests.

#ifndef RONPATH_NET_LOSS_PROCESS_H_
#define RONPATH_NET_LOSS_PROCESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/config.h"
#include "net/interval_ring.h"
#include "util/rng.h"
#include "util/time.h"

namespace ronpath {

namespace snap {
class Encoder;
class Decoder;
}  // namespace snap

// Maximum allowed backwards distance of a query from the furthest query.
inline constexpr Duration kQuerySafety = Duration::seconds(30);
// How far beyond the queried time the generators run ahead.
inline constexpr Duration kGenLookahead = Duration::seconds(60);

struct StateInterval {
  TimePoint start;
  TimePoint end;
  double value = 1.0;  // episode/static: rate boost; burst: drop prob
};

// A monotone position in an interval timeline. Holds an absolute index
// (total intervals ever popped + offset into the live ring), so pruning
// never invalidates it. Callers that query the same timeline from two
// differently-paced streams (packet time vs. generation lookahead) keep
// one cursor per stream so neither thrashes the other.
struct TimelineCursor {
  std::uint64_t idx = 0;
};

// Homogeneous-rate lazy Poisson interval process (episodes, outages).
// Overlapping intervals are merged (value = max).
class LazyIntervalProcess {
 public:
  // `mean_interarrival` between interval starts; duration ~ Exp(mean_duration).
  LazyIntervalProcess(Duration mean_interarrival, Duration mean_duration, double value,
                      Rng rng);

  void generate_until(TimePoint t);
  void prune_before(TimePoint t);

  // Value of the interval covering t, or 0.0 if none. generate_until(t)
  // must have been called with a time >= t, and t must not precede the
  // pruned history (prune_before watermark). Violations assert in debug
  // builds; release builds clamp t into the valid [pruned, generated]
  // range so a badly out-of-order query degrades to the nearest known
  // state instead of silently reporting "no interval".
  //
  // The cursor variant is amortized O(1) for roughly-monotone t streams;
  // the no-argument form uses an internal cursor. value_at_reference is
  // the retained binary-search implementation the fuzz tests compare
  // against; it never touches cursor state.
  [[nodiscard]] double value_at(TimePoint t, TimelineCursor& cursor) const;
  [[nodiscard]] double value_at(TimePoint t) const { return value_at(t, default_cursor_); }
  [[nodiscard]] double value_at_reference(TimePoint t) const;
  [[nodiscard]] bool active_at(TimePoint t) const { return value_at(t) != 0.0; }

  // Edges (starts and ends) in [from, to), used by the burst generator to
  // keep its piecewise-constant rate segments exact.
  void collect_edges(TimePoint from, TimePoint to, std::vector<TimePoint>& out) const;

  // True when any interval edge falls strictly inside (from, to). O(1)
  // amortized for monotone `from` streams via `cursor`; used by the burst
  // generator to take its no-edges fast path.
  [[nodiscard]] bool has_edge_in(TimePoint from, TimePoint to, TimelineCursor& cursor) const;

  // First interval edge strictly after t, or the generated horizon when no
  // further edge is known yet. The value at any instant in (t, returned)
  // equals the value at t; used to bound boost-product caching. Starts
  // never move once generated, and a merge can only extend an interval's
  // end (the value is constant per process), so the bound stays exact.
  [[nodiscard]] TimePoint next_edge_after(TimePoint t, TimelineCursor& cursor) const;

  [[nodiscard]] const Ring<StateInterval>& intervals() const { return intervals_; }
  [[nodiscard]] TimePoint generated_until() const { return cursor_; }

  // Snapshot support: serializes the full mutable state (Rng stream,
  // generation/prune watermarks, retained intervals, query cursor).
  // restore_state expects a process constructed with identical ctor
  // arguments; configuration is not re-encoded.
  void save_state(snap::Encoder& e) const;
  void restore_state(snap::Decoder& d);

  // Invariant auditor: interval ordering/disjointness, watermark
  // consistency (pruned <= generated, next arrival beyond the generated
  // horizon). Appends one message per violation, prefixed with `who`.
  void check_invariants(const std::string& who, std::vector<std::string>& out) const;

 private:
  void push_merged(StateInterval iv);
  // Clamp + assert shared by all lookups.
  [[nodiscard]] TimePoint checked(TimePoint t) const;
  // Index of the first interval with end > t, starting from hint `i`.
  [[nodiscard]] std::size_t seek(TimePoint t, std::size_t i) const;

  Duration mean_interarrival_;
  Duration mean_duration_;
  double value_;
  Rng rng_;
  TimePoint cursor_;         // timeline generated up to here
  TimePoint next_arrival_;   // first arrival at or beyond cursor_
  TimePoint pruned_before_;  // history strictly before here is gone
  std::uint64_t popped_ = 0;  // intervals pruned so far (absolute indexing)
  Ring<StateInterval> intervals_;
  mutable TimelineCursor default_cursor_;
};

// A piecewise-constant segment of the flattened static-boost product.
// Segment k covers [start_k, start_{k+1}) (the last runs to infinity);
// times before the first segment have boost 1.0.
struct BoostSegment {
  TimePoint start;
  double value = 1.0;
};

// Flattens possibly-overlapping multiplicative boost intervals (sorted by
// start) into disjoint segments. Each segment's value is the product over
// the covering intervals taken in input order, so a segment lookup is
// bit-identical to multiplying through the interval list at any time
// inside the segment.
[[nodiscard]] std::vector<BoostSegment> flatten_boosts(const std::vector<StateInterval>& boosts);

// Retained reference: the original linear scan-and-multiply, used by
// tests to pin flatten_boosts + cursor lookups.
[[nodiscard]] double boost_at_reference(const std::vector<StateInterval>& boosts, TimePoint t);

// What a packet experiences when traversing a component at an instant.
struct ComponentSample {
  double drop_prob = 0.0;      // probability this packet is dropped here
  bool outage = false;         // inside a total outage
  bool burst = false;          // inside a loss burst
  bool episode = false;        // inside a congestion episode
  Duration queue_delay_mean;   // mean extra queueing delay to draw from

  friend bool operator==(const ComponentSample&, const ComponentSample&) = default;
};

class ComponentProcess {
 public:
  // `static_boosts`: pre-resolved rate-boost intervals (provider events,
  // configured incidents), sorted by start, possibly overlapping.
  // `site_lon_deg` drives the diurnal phase.
  ComponentProcess(const ComponentParams& params, double site_lon_deg,
                   std::vector<StateInterval> static_boosts, Rng rng);

  // State of the component for a packet arriving at time t.
  [[nodiscard]] ComponentSample sample(TimePoint t);

  // Identical generation and pruning side effects as sample(), but all
  // state lookups go through the retained binary-search reference
  // implementations instead of the cursors. The fuzz tests interleave
  // sample()/sample_reference() on the same stream and assert equality.
  [[nodiscard]] ComponentSample sample_reference(TimePoint t);

  [[nodiscard]] const ComponentParams& params() const { return params_; }

  // Introspection for tests: burst/episode/outage interval counts so far.
  [[nodiscard]] std::size_t generated_bursts() const { return generated_bursts_; }

  // Pregeneration entry point for the PDES advance loops (pdes/advance.h):
  // extends the timelines exactly as a sample(t) would — same horizon,
  // same draws — but without the query-side effects (no max_query_
  // advance, no pruning). Because the interval layout is a pure function
  // of the horizon SEQUENCE, callers must walk a fixed grid of t values
  // (see advance.h); re-requesting an already-generated horizon is a
  // no-op.
  void pregenerate(TimePoint t) { generate_until(t); }

  // Snapshot support: full mutable state (sub-process timelines, burst
  // Rng/cursors/ring, caches, watermarks). Like LazyIntervalProcess,
  // restore_state expects identical construction.
  void save_state(snap::Encoder& e) const;
  void restore_state(snap::Decoder& d);

  // Invariant auditor: delegates to the sub-processes and checks the
  // burst ring plus generation-horizon ordering.
  void check_invariants(const std::string& who, std::vector<std::string>& out) const;

 private:
  void generate_until(TimePoint t);
  // Runs the piecewise-constant burst arrival chain over [from, to).
  void generate_segment(TimePoint from, TimePoint to);
  [[nodiscard]] double static_boost_at(TimePoint t);
  [[nodiscard]] double rate_per_sec_at(TimePoint t);
  void push_burst(StateInterval iv);
  [[nodiscard]] double burst_drop_at(TimePoint t) const;
  [[nodiscard]] double burst_drop_at_reference(TimePoint t) const;
  template <bool kReference>
  [[nodiscard]] ComponentSample sample_impl(TimePoint t);

  ComponentParams params_;
  double site_lon_deg_;
  std::vector<StateInterval> static_boosts_;

  // Flattened static boosts + generation-side cursor (never pruned).
  std::vector<BoostSegment> boost_segments_;
  std::size_t boost_seg_idx_ = 0;
  // All static-boost edges, sorted; generation-side cursor.
  std::vector<TimePoint> static_edges_;
  std::size_t static_edge_idx_ = 0;

  LazyIntervalProcess episodes_;
  LazyIntervalProcess outages_;
  // Generation-lookahead cursor into episodes_ (runs ~kGenLookahead ahead
  // of the packet-time cursor inside episodes_ itself).
  TimelineCursor episode_gen_cursor_;

  Rng burst_rng_;
  TimePoint burst_cursor_;
  // Cached episode*static boost products for the burst generator, exact
  // for generation times in [last recompute, ebsb_valid_until_). See
  // generate_segment.
  TimePoint ebsb_valid_until_;      // epoch: recompute on first use
  double cached_rate_upper_ = 0.0;  // rate_upper_factor_ * eb * sb
  bool cached_rate_zero_ = true;    // base * eb * sb == 0
  std::vector<TimePoint> edges_scratch_;  // reused by generate_until
  TimePoint next_hour_edge_;  // first hourly rate edge after burst_cursor_
  Ring<StateInterval> bursts_;
  std::uint64_t bursts_popped_ = 0;
  mutable TimelineCursor burst_query_cursor_;
  std::size_t generated_bursts_ = 0;

  // Precomputed per-component constants (bit-identical to evaluating the
  // source expressions at each use).
  double base_rate_per_sec_ = 0.0;  // bursts_per_hour / 3600
  double rate_upper_factor_ = 0.0;  // base * (1 + diurnal_amplitude)
  double ln_burst_median_ = 0.0;
  double ln_short_burst_median_ = 0.0;

  TimePoint max_query_;
};

}  // namespace ronpath

#endif  // RONPATH_NET_LOSS_PROCESS_H_
