// Testbed topology: sites, access-link classes, and geography.
//
// The underlay decomposes every one-way overlay path into components:
//
//   direct   src->dst      : up(src), prov_out(src), core(src,dst),
//                            prov_in(dst), down(dst)
//   indirect src->via->dst : up(src), prov_out(src), core(src,via),
//                            prov_in(via), down(via), up(via),
//                            prov_out(via), core(via,dst), prov_in(dst),
//                            down(dst)
//
// Per-site components - the access link (up/down) and the transit
// provider's ingress/egress (prov_in/prov_out) - are shared between the
// direct path and every alternate path from/to that site. This is the
// structural source of the correlated losses the paper measures: Section
// 2.4 observes that failures concentrate near the network edge and in
// shared provider infrastructure, where no alternate overlay path can
// route around them.
//
// Core segments model the wide-area portion between two sites' providers
// and are distinct per ordered site pair, so one-hop alternates have
// largely independent middles.

#ifndef RONPATH_NET_TOPOLOGY_H_
#define RONPATH_NET_TOPOLOGY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/ids.h"
#include "util/time.h"

namespace ronpath {

// Access technology / site category, following Table 1's descriptions.
enum class LinkClass : std::uint8_t {
  kUniversityI2,   // US university on the Internet2 backbone (fast, clean)
  kUniversity,     // other university data-center connectivity
  kLargeIsp,       // large US ISP POP (GBLX-*, AT&T)
  kSmallIsp,       // small/medium ISP
  kCompany,        // corporate connectivity
  kCableDsl,       // residential cable modem or DSL line
  kIntlUniversity, // university outside North America
  kIntlIsp,        // ISP outside North America
};

[[nodiscard]] std::string_view to_string(LinkClass c);

// Per-site component kinds: access-link directions plus the transit
// provider's egress (towards the core) and ingress (from the core).
enum class SiteComp : std::uint8_t { kUp = 0, kDown = 1, kProvOut = 2, kProvIn = 3 };
inline constexpr std::size_t kSiteCompCount = 4;

// Back-compat alias for the access directions.
using AccessDir = SiteComp;

struct Site {
  std::string name;
  std::string location;
  LinkClass link_class = LinkClass::kSmallIsp;
  // Geographic coordinates, degrees; used for propagation delay.
  double lat_deg = 0.0;
  double lon_deg = 0.0;
  // Part of the 17-node 2002 testbed subset (bold hosts in Table 1).
  bool in_2002_testbed = false;
};

// Identifies one loss/latency component of the underlay. Site components
// are per (site, SiteComp); core components per ordered (src_site,
// dst_site) pair.
struct ComponentId {
  enum class Kind : std::uint8_t { kSite, kCore } kind = Kind::kSite;
  NodeId a = kInvalidNode;  // site, or source site (core)
  NodeId b = kInvalidNode;  // SiteComp value, or dest site (core)

  [[nodiscard]] constexpr SiteComp site_comp() const { return static_cast<SiteComp>(b); }
  [[nodiscard]] constexpr bool is_provider() const {
    return kind == Kind::kSite &&
           (site_comp() == SiteComp::kProvOut || site_comp() == SiteComp::kProvIn);
  }

  friend constexpr bool operator==(const ComponentId&, const ComponentId&) = default;
};

class Topology {
 public:
  explicit Topology(std::vector<Site> sites);

  [[nodiscard]] std::size_t size() const { return sites_.size(); }
  [[nodiscard]] const Site& site(NodeId id) const { return sites_[id]; }
  [[nodiscard]] const std::vector<Site>& sites() const { return sites_; }
  [[nodiscard]] std::optional<NodeId> find(std::string_view name) const;

  // One-way great-circle propagation delay between two sites, including a
  // path-stretch factor for non-geodesic fiber routing.
  [[nodiscard]] Duration propagation(NodeId a, NodeId b) const;

  // Component enumeration. Site components are numbered first
  // (kSiteCompCount per site), then core components (N*(N-1) ordered
  // pairs).
  [[nodiscard]] std::size_t component_count() const;
  [[nodiscard]] std::size_t site_index(NodeId site, SiteComp comp) const;
  // Back-compat spelling for access links.
  [[nodiscard]] std::size_t access_index(NodeId site, AccessDir dir) const {
    return site_index(site, dir);
  }
  [[nodiscard]] std::size_t core_index(NodeId src, NodeId dst) const;
  [[nodiscard]] ComponentId component(std::size_t index) const;

  // The ordered list of component indices a packet traverses on `path`,
  // paired with which site's access class governs each component.
  struct Hop {
    std::size_t component;
    // Site whose parameters drive this component (access: the site; core:
    // the source site of the segment).
    NodeId param_site;
    // Application-level forwarding turn-around happens after this hop
    // (set on each intermediate's down access component).
    bool forward_after = false;
  };
  [[nodiscard]] std::vector<Hop> hops(const PathSpec& path) const;

  // Most components a path can traverse (two-hop: three legs of five).
  static constexpr std::size_t kMaxHops = 15;
  // Allocation-free variant for the packet hot path: writes up to kMaxHops
  // entries into `out` and returns the count.
  std::size_t hops_into(const PathSpec& path, Hop* out) const;

 private:
  std::vector<Site> sites_;
};

}  // namespace ronpath

#endif  // RONPATH_NET_TOPOLOGY_H_
