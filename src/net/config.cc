#include "net/config.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ronpath {
namespace {

// Access-link parameter table. Loss mass is concentrated near the edge
// (Section 2.4 of the paper: failures manifest near the network edge,
// where routing cannot avoid them); per-class severity follows the access
// technologies of Table 1, from Internet2 universities (near-lossless) to
// residential cable/DSL (the paper's worst paths).
ComponentParams access_params(LinkClass c) {
  ComponentParams p;
  // Common shape: bursts of median ~150 ms (so that 10/20 ms-spaced
  // packets mostly share fate while ~500 ms-spaced ones rarely do, per
  // Bolot), drop probability 0.78 inside a burst.
  
  p.burst_drop_prob = 0.74;
  p.burst_queue_mean = Duration::millis(10);
  p.episode_queue_mean = Duration::millis(3);
  p.diurnal_amplitude = 0.75;
  p.jitter_median = Duration::micros(250);
  p.jitter_sigma = 0.8;

  switch (c) {
    case LinkClass::kUniversityI2:
      p.base_loss = 3e-5;
      p.bursts_per_hour = 0.41;
      p.episodes_per_day = 0.195;
      p.episode_mean = Duration::minutes(8);
      p.episode_loss_rate = 0.02;
      p.outages_per_month = 0.85;
      p.outage_mean = Duration::minutes(2);
      p.fixed_delay = Duration::micros(150);
      break;
    case LinkClass::kUniversity:
      p.base_loss = 6e-5;
      p.bursts_per_hour = 1.02;
      p.episodes_per_day = 0.39;
      p.episode_mean = Duration::minutes(10);
      p.episode_loss_rate = 0.03;
      p.outages_per_month = 0.7;
      p.outage_mean = Duration::minutes(3);
      p.fixed_delay = Duration::micros(300);
      break;
    case LinkClass::kLargeIsp:
      p.base_loss = 6e-5;
      p.bursts_per_hour = 1.5;
      p.episodes_per_day = 0.585;
      p.episode_mean = Duration::minutes(12);
      p.episode_loss_rate = 0.04;
      p.outages_per_month = 0.42;
      p.outage_mean = Duration::minutes(3);
      p.fixed_delay = Duration::micros(500);
      break;
    case LinkClass::kSmallIsp:
      p.base_loss = 1.2e-4;
      p.bursts_per_hour = 2.5;
      p.episodes_per_day = 0.975;
      p.episode_mean = Duration::minutes(15);
      p.episode_loss_rate = 0.06;
      p.outages_per_month = 1.4;
      p.outage_mean = Duration::minutes(4);
      p.fixed_delay = Duration::micros(800);
      break;
    case LinkClass::kCompany:
      p.base_loss = 1.2e-4;
      p.bursts_per_hour = 2.3;
      p.episodes_per_day = 0.455;
      p.episode_mean = Duration::minutes(15);
      p.episode_loss_rate = 0.06;
      p.outages_per_month = 1.1;
      p.outage_mean = Duration::minutes(4);
      p.fixed_delay = Duration::micros(600);
      break;
    case LinkClass::kCableDsl:
      p.base_loss = 3.2e-4;
      p.bursts_per_hour = 7.4;
      p.episodes_per_day = 2.86;
      p.episode_mean = Duration::minutes(25);
      p.episode_loss_rate = 0.12;
      p.burst_queue_mean = Duration::millis(25);
      p.episode_queue_mean = Duration::millis(8);
      p.outages_per_month = 2.1;
      p.outage_mean = Duration::minutes(5);
      p.fixed_delay = Duration::millis(6);
      p.jitter_median = Duration::millis(1);
      break;
    case LinkClass::kIntlUniversity:
      p.base_loss = 1.2e-4;
      p.bursts_per_hour = 1.9;
      p.episodes_per_day = 0.78;
      p.episode_mean = Duration::minutes(15);
      p.episode_loss_rate = 0.06;
      p.outages_per_month = 1.1;
      p.outage_mean = Duration::minutes(4);
      p.fixed_delay = Duration::millis(1);
      break;
    case LinkClass::kIntlIsp:
      p.base_loss = 1.2e-4;
      p.bursts_per_hour = 2.9;
      p.episodes_per_day = 0.975;
      p.episode_mean = Duration::minutes(15);
      p.episode_loss_rate = 0.08;
      p.outages_per_month = 1.4;
      p.outage_mean = Duration::minutes(4);
      p.fixed_delay = Duration::millis(1);
      break;
  }
  return p;
}

ComponentParams provider_params() {
  ComponentParams p;
  // Provider edges: shared by all core segments of a site. Bursts with
  // high drop create the cross-path conditional losses of Section 4.4;
  // being on every path from the site, they are not avoidable by either
  // reactive or mesh routing.
  p.base_loss = 2e-5;
  p.bursts_per_hour = 3.6;
  
  p.burst_drop_prob = 0.80;
  p.burst_queue_mean = Duration::millis(8);
  p.episodes_per_day = 0.35;
  p.episode_mean = Duration::minutes(15);
  p.episode_loss_rate = 0.05;
  p.episode_queue_mean = Duration::millis(3);
  p.outages_per_month = 0.35;
  p.outage_mean = Duration::minutes(3);
  p.diurnal_amplitude = 0.7;
  p.fixed_delay = Duration::micros(200);
  p.jitter_median = Duration::micros(200);
  p.jitter_sigma = 0.7;
  return p;
}

ComponentParams core_params() {
  ComponentParams p;
  // Wide-area middles carry a minority of the loss mass: short bursts with
  // near-total drop (router transients) plus occasional segment-specific
  // episodes and outages, which are the component probe-based routing can
  // actually avoid.
  p.base_loss = 3e-5;
  p.bursts_per_hour = 0.15;
  p.burst_drop_prob = 0.90;
  p.burst_queue_mean = Duration::millis(8);
  p.episodes_per_day = 0.7;
  p.episode_mean = Duration::minutes(20);
  p.episode_burst_boost = 150.0;
  p.episode_queue_mean = Duration::millis(4);
  p.outages_per_month = 0.5;
  p.outage_mean = Duration::minutes(5);
  p.diurnal_amplitude = 0.65;
  p.fixed_delay = Duration::zero();  // propagation added by the network
  p.jitter_median = Duration::micros(200);
  p.jitter_sigma = 0.7;
  return p;
}

bool is_intl(const Site& s) {
  return s.link_class == LinkClass::kIntlUniversity || s.link_class == LinkClass::kIntlIsp;
}

bool is_korea(const Site& s) { return s.name == "Korea"; }

void scale_rates(ComponentParams& p, double f) {
  p.bursts_per_hour *= f;
  p.episodes_per_day *= f;
  p.outages_per_month *= f;
  p.base_loss *= f;
}

std::vector<ComponentParams> default_access_table() {
  std::vector<ComponentParams> table;
  table.reserve(8);
  for (int c = 0; c <= static_cast<int>(LinkClass::kIntlIsp); ++c) {
    table.push_back(access_params(static_cast<LinkClass>(c)));
  }
  return table;
}

}  // namespace

double mean_burst_seconds(const ComponentParams& p) {
  // Lognormal mean = median * exp(sigma^2 / 2), mixed over the two
  // populations.
  const double mean_short =
      p.short_burst_median.to_seconds_f() * std::exp(p.short_burst_sigma * p.short_burst_sigma / 2.0);
  const double mean_long =
      p.burst_median.to_seconds_f() * std::exp(p.burst_sigma * p.burst_sigma / 2.0);
  return p.short_burst_fraction * mean_short + (1.0 - p.short_burst_fraction) * mean_long;
}

double derived_boost(const ComponentParams& p, double target_loss_rate) {
  // In-state loss = rate * mean_duration * drop_prob (for small products).
  const double quiet = p.bursts_per_hour / 3600.0 * mean_burst_seconds(p) * p.burst_drop_prob;
  if (quiet <= 0.0) return 1.0;
  return std::max(1.0, target_loss_rate / quiet);
}

ComponentParams NetConfig::params_for(const Topology& topo, std::size_t component) const {
  const ComponentId id = topo.component(component);
  if (id.kind == ComponentId::Kind::kSite) {
    const Site& site = topo.site(id.a);
    if (id.is_provider()) {
      ComponentParams p = provider;
      double f = 1.0;
      if (site.link_class == LinkClass::kCableDsl) f *= consumer_provider_factor;
      if (is_intl(site)) f *= intl_provider_factor;
      if (is_korea(site)) f *= korea_provider_factor;
      p.bursts_per_hour *= f * loss_scale;
      p.episodes_per_day *= f;
      p.outages_per_month *= f;
      return p;
    }
    const auto class_idx = static_cast<std::size_t>(site.link_class);
    assert(class_idx < access.size());
    ComponentParams p = access[class_idx];
    const bool up = id.site_comp() == SiteComp::kUp;
    double dir_factor = up ? access_up_factor : access_down_factor;
    if (up && site.link_class == LinkClass::kCableDsl) dir_factor *= consumer_up_extra;
    p.bursts_per_hour *= dir_factor * loss_scale;
    return p;
  }
  // Core segment: scale by endpoint internationality and the Korea path.
  const Site& a = topo.site(id.a);
  const Site& b = topo.site(id.b);
  ComponentParams p = core;
  double f = 1.0;
  if (is_intl(a) || is_intl(b)) f *= intl_core_rate_factor;
  if (is_korea(a) || is_korea(b)) f *= korea_core_rate_factor;
  p.bursts_per_hour *= f * loss_scale;
  p.episodes_per_day *= f;
  p.outages_per_month *= f;
  p.base_loss *= f;
  return p;
}

NetConfig NetConfig::profile_2003(Duration run) {
  NetConfig cfg;
  cfg.access = default_access_table();
  cfg.provider = provider_params();
  cfg.core = core_params();
  cfg.loss_scale = 1.7;
  cfg.intl_core_rate_factor = 3.5;
  cfg.korea_core_rate_factor = 7.0;
  cfg.provider_events = ProviderEventParams{};
  // The Cornell pathology of ~6 May 2003 (day 6 of 14): provider-level
  // latency inflation on most of Cornell's transit paths for ~30 hours.
  // Incident positions scale with the run length so short runs still
  // contain them at the same relative offsets.
  const double scale = run.to_seconds_f() / Duration::days(14).to_seconds_f();
  Incident cornell;
  cornell.site_name = "Cornell";
  cornell.scope = Incident::Scope::kCore;
  cornell.start = TimePoint::epoch() + Duration::from_seconds_f(
                                           Duration::days(6).to_seconds_f() * scale);
  cornell.duration = Duration::from_seconds_f(
      std::min(Duration::hours(30).to_seconds_f() * scale, Duration::hours(30).to_seconds_f()));
  cornell.cross_fraction = 0.8;
  cornell.added_latency = Duration::millis(700);
  cornell.loss_rate = 0.015;
  cornell.description = "Cornell transit pathology (~6 May 2003): ~1 s latencies";
  cfg.incidents.push_back(cornell);
  // A global congestion storm producing the worst monitored hour (>13%
  // average loss, Section 4.2).
  Incident storm;
  storm.site_name = "";
  storm.scope = Incident::Scope::kCore;
  // Hour-aligned so the worst-hour statistic sees the storm whole.
  const double storm_s =
      (Duration::days(9) + Duration::hours(14)).to_seconds_f() * scale;
  storm.start = TimePoint::epoch() +
                Duration::hours(static_cast<std::int64_t>(storm_s / 3600.0));
  // Duration scales with the run so short calibration runs keep the
  // storm's share of total loss mass; at 14 days it is the paper's one
  // worst hour.
  storm.duration = Duration::from_seconds_f(Duration::hours(1).to_seconds_f() * scale);
  storm.cross_fraction = 0.75;
  storm.loss_rate = 0.32;
  storm.description = "global congestion storm (worst monitored hour)";
  cfg.incidents.push_back(storm);
  return cfg;
}

NetConfig NetConfig::profile_2002(Duration run) {
  NetConfig cfg = profile_2003(run);
  cfg.incidents.clear();
  // 2002 conditions: higher loss overall (0.74% direct) with a larger
  // share in the wide area, which lowers cross-path loss correlation
  // (direct rand CLP was 51% in 2002 vs 62% in 2003, Section 4.4).
  cfg.loss_scale *= 1.15;
  scale_rates(cfg.provider, 0.45);
  scale_rates(cfg.core, 2.2);
  cfg.provider_events.events_per_site_day = 0.6;
  cfg.provider_events.cross_fraction = 0.4;
  return cfg;
}

}  // namespace ronpath
