// Seeded synthetic topology generator for the scaling tiers.
//
// The 2003 testbed stops at 30 hand-placed hosts; growing the overlay to
// 1k-10k nodes needs an underlay with the same delay/loss *structure* at
// arbitrary size. The generator is hierarchical — sites live in metros
// (a fixed table of ~40 world metro areas with real coordinates), metros
// contain a few providers, and each site gets a per-site seeded fork for
// its coordinate jitter and access-link class — so propagation delays
// cluster the way real deployments do (sub-ms within a metro, tens of ms
// across a continent, >100 ms transoceanic) and the LinkClass mix keeps
// NetConfig::params_for's per-class loss calibration meaningful.
//
// Determinism: the generated site list is a pure function of
// ScaleTopologyParams (per-site forks, no draw-order coupling between
// sites), so the same params give byte-identical topologies across runs,
// shard counts and restores. Names are synthetic ("m03-p1-s0007") and
// never collide with testbed names — in particular never "Korea", which
// NetConfig matches by exact name.

#ifndef RONPATH_NET_SCALE_TOPOLOGY_H_
#define RONPATH_NET_SCALE_TOPOLOGY_H_

#include <cstddef>
#include <cstdint>

#include "net/topology.h"

namespace ronpath {

struct ScaleTopologyParams {
  std::size_t nodes = 300;
  std::uint64_t seed = 1;
  // Metro areas drawn from the fixed world table; 0 derives
  // clamp(nodes / 12, 4, table size) so density grows with the tier.
  std::size_t metros = 0;
  // Providers per metro (naming + placement granularity).
  std::size_t providers_per_metro = 3;
};

// Builds a synthetic hierarchical topology. Requires nodes >= 2.
[[nodiscard]] Topology scale_topology(const ScaleTopologyParams& params);

}  // namespace ronpath

#endif  // RONPATH_NET_SCALE_TOPOLOGY_H_
