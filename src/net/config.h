// Underlay parameterization.
//
// Each underlay component (access link direction or core segment) runs
// three stochastic processes whose composition produces the loss phenomena
// the paper measures:
//
//  * short BURSTS   - router-queue overflow events lasting tens to a few
//                     hundred ms; packets inside a burst drop with high
//                     probability. These produce the high conditional loss
//                     probability of back-to-back packets (Section 4.4) and
//                     its decay with 10/20 ms spacing (Bolot's effect).
//  * EPISODES       - sustained congestion lasting minutes; an episode
//                     multiplies the burst arrival rate, creating the
//                     elevated 20-minute/hourly loss windows of Figure 3 /
//                     Table 6 that probe-based reactive routing can detect
//                     and route around.
//  * OUTAGES        - total failures lasting minutes (routing convergence,
//                     edge faults); drop probability 1.
//
// Burst arrivals are modulated by a diurnal factor (local time of the
// governing site) and by configured incidents (e.g., the Cornell latency
// pathology of ~6 May 2003 in Section 4.5).
//
// Parameters are per LinkClass for access links and per segment scope for
// core segments. The 2003 and 2002 profiles are calibrated so that a
// RON2003/RONwide run reproduces Table 5's headline numbers; see
// EXPERIMENTS.md for paper-vs-measured values.

#ifndef RONPATH_NET_CONFIG_H_
#define RONPATH_NET_CONFIG_H_

#include <string>
#include <vector>

#include "net/topology.h"
#include "util/time.h"

namespace ronpath {

// Stochastic parameters of one underlay component.
struct ComponentParams {
  // Independent per-packet loss probability outside bursts/outages.
  double base_loss = 0.0002;
  // Short-burst Poisson arrival rate during quiet periods, per hour.
  double bursts_per_hour = 1.0;
  // Burst durations are a two-population mixture: a large count of very
  // short microbursts (single-queue overflow transients, gone within
  // ~10 ms) and a minority of long bursts (hundreds of ms). The mixture
  // is what shapes the paper's CLP-vs-gap curve: back-to-back packets
  // share every burst, 10/20 ms-spaced packets only the long ones, and
  // ~500 ms-spaced packets almost none (Bolot).
  Duration burst_median = Duration::millis(200);  // long-burst median
  double burst_sigma = 0.9;                       // long-burst ln-sigma
  double short_burst_fraction = 0.84;             // count fraction of microbursts
  Duration short_burst_median = Duration::millis(5);
  double short_burst_sigma = 0.6;
  // Drop probability for packets inside a burst.
  double burst_drop_prob = 0.8;
  // Mean extra one-way queueing delay while inside a burst.
  Duration burst_queue_mean = Duration::millis(12);

  // Sustained congestion episodes: Poisson arrivals per day, exponential
  // duration. Severity is specified as the target per-packet loss rate
  // while the episode is active; the implied burst-rate boost is derived
  // from the component's quiet burst parameters (see derived_boost()).
  // episode_burst_boost is used directly when episode_loss_rate == 0.
  double episodes_per_day = 0.5;
  Duration episode_mean = Duration::minutes(18);
  double episode_burst_boost = 40.0;
  double episode_loss_rate = 0.0;
  // Mean extra queueing delay during an episode (outside bursts).
  Duration episode_queue_mean = Duration::millis(3);

  // Outages: Poisson arrivals per 30 days, exponential duration.
  double outages_per_month = 1.0;
  Duration outage_mean = Duration::minutes(4);

  // Diurnal modulation amplitude of the burst rate, in [0, 1).
  double diurnal_amplitude = 0.5;

  // Deterministic one-way delay contribution (serialization / last mile
  // for access links; added to propagation for core segments).
  Duration fixed_delay = Duration::millis(1);
  // Lognormal per-packet jitter: median and sigma.
  Duration jitter_median = Duration::micros(300);
  double jitter_sigma = 0.8;
};

// A scheduled incident: time-bounded modification of the components
// associated with `site_name`. Scope selects whether the site's access
// links or the core segments incident to the site are affected; for core
// scope, each segment is (deterministically) affected with probability
// `cross_fraction`, modelling provider-level events that hit most - but
// not all - transit paths of a site, so that reactive routing can find the
// clean remainder (the Cornell latency pathology of Section 4.5 behaves
// this way: indirection avoided it).
struct Incident {
  std::string site_name;  // empty = all sites
  enum class Scope : std::uint8_t { kAccess, kCore } scope = Scope::kCore;
  TimePoint start;
  Duration duration;
  double cross_fraction = 1.0;
  // Added one-way latency on affected components while active.
  Duration added_latency = Duration::zero();
  // Multiplies the burst arrival rate on affected components while active.
  double burst_boost = 1.0;
  // Alternative severity spec: target per-packet loss rate while active
  // (overrides burst_boost when > 0).
  double loss_rate = 0.0;
  std::string description;

  [[nodiscard]] TimePoint end() const { return start + duration; }
};

// Recurrent provider-level events: congestion/instability at a site's
// transit provider that simultaneously degrades a random subset of the
// core segments incident to that site. These create (a) loss mass that
// probe-based routing can avoid by finding an unaffected intermediate and
// (b) occasional simultaneous degradation of direct and alternate paths.
struct ProviderEventParams {
  double events_per_site_day = 0.6;
  Duration mean_duration = Duration::minutes(15);
  // Target per-packet loss rate on affected segments while active.
  double event_loss_rate = 0.03;
  // Probability each incident core segment of the site is affected.
  double cross_fraction = 0.55;
};

struct NetConfig {
  // Access-link parameters by LinkClass (indexed by enum value).
  std::vector<ComponentParams> access;
  // Asymmetry: burst-rate factors applied to the up / down direction of
  // access links. Consumer (cable/DSL) uplinks are the congested side.
  double access_up_factor = 1.25;
  double access_down_factor = 0.9;
  double consumer_up_extra = 2.0;  // additional factor for kCableDsl up

  // Transit-provider ingress/egress component baseline (shared by every
  // core segment of a site; see topology.h). Section 2.4's shared-
  // infrastructure failures live here: they correlate losses across the
  // direct path and all one-hop alternates of a site, and no overlay
  // route avoids them.
  ComponentParams provider;
  // Rate multiplier for the provider components of consumer (cable/DSL)
  // and international sites, and for the Korea site specifically.
  double consumer_provider_factor = 2.0;
  double intl_provider_factor = 2.5;
  double korea_provider_factor = 3.0;

  // Core segment baseline.
  ComponentParams core;
  // Multiplier on core burst/episode/outage rates when either endpoint
  // site is international (transoceanic segments are lossier).
  double intl_core_rate_factor = 3.0;
  // Extra multiplier when either endpoint is the Korea site (the paper's
  // worst path, ~6% loss to a US DSL host).
  double korea_core_rate_factor = 6.0;

  // Global calibration multiplier on all burst arrival rates.
  double loss_scale = 1.0;

  ProviderEventParams provider_events;

  // Persistent per-core-segment quality factor: lognormal multiplier on
  // the segment's burst rate (heavy tail). This produces the chronically
  // lossy paths of Figure 2's tail and gives best-path routing stable,
  // re-findable alternatives - the "frequently sub-optimal" default routes
  // the paper's Section 2.2 describes.
  double core_quality_sigma = 0.6;
  double core_quality_max = 30.0;

  // Per-ordered-pair routing stretch of core propagation delay, lognormal
  // with this median and sigma (>= min). Stretch > 1 encodes non-geodesic
  // routing; its dispersion creates the triangle-inequality violations
  // that give latency-optimized overlay routing something to win.
  double core_stretch_median = 1.08;
  double core_stretch_sigma = 0.35;
  double core_stretch_min = 1.03;

  // Per-hop forwarding delay added at an intermediate overlay node.
  Duration forward_delay = Duration::micros(300);
  // Scheduled incidents (latency pathologies, loss storms).
  std::vector<Incident> incidents;

  // Materialize core (pair) components on first traversal instead of
  // eagerly. The n*(n-1) core grid dominates construction time and
  // memory at 1000+ nodes, while a capped overlay only ever touches the
  // O(n * fanout) pairs it probes or routes through. Identical draws and
  // timelines for every component that is touched (construction forks
  // are keyed, not sequenced); incompatible with the sharded underlay,
  // whose shard plans pre-partition the full component grid.
  bool lazy_components = false;

  // Resolved parameters for a component of the given topology (applies
  // class tables, up/down asymmetry, intl/Korea factors and loss_scale).
  [[nodiscard]] ComponentParams params_for(const Topology& topo, std::size_t component) const;

  // Calibrated profiles reproducing the paper's 2003 / 2002 conditions.
  // 2003: 30 nodes, 0.42% direct loss. 2002: 17 nodes, 0.74% direct loss,
  // lower cross-path loss correlation (Section 4.4). `run` scales the
  // incident schedule (Cornell pathology, worst-hour storm) into the run,
  // at the same relative positions as in the paper's 14-day window.
  [[nodiscard]] static NetConfig profile_2003(Duration run = Duration::days(14));
  [[nodiscard]] static NetConfig profile_2002(Duration run = Duration::days(14));
};

// Burst-rate diurnal modulation factor at a given UTC time for a site at
// the given longitude; peak in the site's local late afternoon.
[[nodiscard]] double diurnal_factor(TimePoint t, double lon_deg, double amplitude);

// Mean burst duration of the component's short/long mixture, seconds.
[[nodiscard]] double mean_burst_seconds(const ComponentParams& p);

// Burst-rate boost that makes the component's expected in-state loss rate
// equal `target_loss_rate`, given its quiet burst parameters.
[[nodiscard]] double derived_boost(const ComponentParams& p, double target_loss_rate);

}  // namespace ronpath

#endif  // RONPATH_NET_CONFIG_H_
