#include "pdes/advance.h"

namespace ronpath::pdes {

void pregenerate_batch(Network& net, const std::uint32_t* components, std::size_t count,
                       TimePoint q) {
  // The arrival chains draw a data-dependent number of variates, so the
  // batch stays scalar per component; batching still amortizes the call
  // overhead and keeps the ring/cursor working set hot (advance.h).
  for (std::size_t i = 0; i < count; ++i) {
    net.component(components[i]).pregenerate(q);
  }
}

void advance_shard(Network& net, const std::vector<std::uint32_t>& components, TimePoint q) {
  for (std::size_t i = 0; i < components.size(); i += kAdvanceBatch) {
    pregenerate_batch(net, components.data() + i, std::min(kAdvanceBatch, components.size() - i),
                      q);
  }
}

AdvanceService::AdvanceService(Network& net, ShardPlan plan)
    : net_(net), plan_(std::move(plan)) {
  if (plan_.shards > 1) {
    threads_.reserve(static_cast<std::size_t>(plan_.shards));
    for (int k = 0; k < plan_.shards; ++k) {
      threads_.emplace_back(&AdvanceService::worker, this, static_cast<std::size_t>(k));
    }
  }
}

AdvanceService::~AdvanceService() {
  if (!threads_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }
}

TimePoint AdvanceService::advance_to(TimePoint watermark) {
  const TimePoint needed = watermark + kAdvanceMargin;
  while (done_ < needed) {
    const TimePoint q = done_ + kAdvanceStride;
    advance_quantum(q);
    done_ = q;
  }
  return done_ - kAdvanceMargin;
}

void AdvanceService::advance_quantum(TimePoint q) {
  if (threads_.empty()) {
    for (const auto& components : plan_.shard_components) {
      advance_shard(net_, components, q);
    }
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  job_q_ = q;
  workers_done_ = 0;
  ++job_generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [&] { return workers_done_ == threads_.size(); });
}

void AdvanceService::worker(std::size_t shard) {
  std::uint64_t seen = 0;
  for (;;) {
    TimePoint q;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stopping_ || job_generation_ != seen; });
      if (stopping_) return;
      seen = job_generation_;
      q = job_q_;
    }
    advance_shard(net_, plan_.shard_components[shard], q);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++workers_done_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace ronpath::pdes
