// Conservative-lookahead parallel discrete-event engine: one trial's
// packet stream sharded across cores.
//
// The unit of work is a hop traversal: event (at, seq, hop) means
// packet `seq` reaches component hop `hop` of its path at time `at`.
// Each shard owns the components of its sites (pdes/partition.h) and
// keeps its own binary heap of pending events — plain POD entries in a
// flat vector (the allocation-free spirit of event/scheduler.h's slot
// pool; hop events need no callbacks, so the slots ARE the events),
// ordered by (at, seq).
//
// Synchronization is windowed: with W = min over shards of the next
// pending event time and L = the partition's lookahead bound, every
// event in [W, W + L) can be processed in parallel — any event one
// shard creates for another carries at >= t + floor(core) >= W + L and
// lands in a later window. Two rendezvous per window:
//
//   window barrier   computes W (std::barrier completion step), decides
//                    the horizon, and releases the shards to process;
//   exchange barrier after processing; waiting shards keep draining
//                    their incoming handoff queues so a producer facing
//                    a full queue ("push or drain" backpressure) can
//                    always make progress — fixed-capacity queues with
//                    no deadlock.
//
// Determinism: every shard processes its events in (at, seq) order, and
// any cross-shard event arrives strictly before the window that could
// process it, so the per-component query sequence — and with the
// per-component RNG substreams of Network's sharded-underlay mode, every
// drawn variate — is a pure function of the injected stream. Results,
// stats that describe the simulation, and snapshots are byte-identical
// at any shard count; see DESIGN.md §13 for the full argument.
//
// Snapshots (save_state/restore_state) write a canonical, shard-count-
// independent stream: packets in injection order, results in seq order,
// pending events sorted by (at, seq). restore_state rehomes events
// under the restoring engine's own partition, so a checkpoint taken at
// --shards 4 continues byte-identically under --shards 1.

#ifndef RONPATH_PDES_ENGINE_H_
#define RONPATH_PDES_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "net/network.h"
#include "pdes/advance.h"
#include "pdes/handoff.h"
#include "pdes/partition.h"
#include "util/time.h"

namespace ronpath::pdes {

struct EngineConfig {
  int shards = 1;
  // Per ordered shard pair; full queues trigger push-or-drain
  // backpressure, never loss.
  std::size_t handoff_capacity = 4096;
  // Upper bound on a window even when the lookahead is unbounded
  // (shards == 1), so pregeneration stays quantum-by-quantum and memory
  // stays bounded on long streams.
  Duration max_window = kAdvanceStride;
};

// Outcome slot for one injected packet.
struct PacketOutcome {
  bool done = false;
  bool delivered = false;
  DropCause cause = DropCause::kNone;
  std::uint32_t drop_component = 0;
  Duration latency = Duration::zero();
};

class Engine {
 public:
  // `net` must have its sharded underlay enabled (per-component packet
  // RNG substreams) BEFORE any traffic: the engine queries components
  // from shard threads, which is only deterministic — or race-free —
  // with the partitioned streams. Throws std::logic_error otherwise,
  // and propagates the partition's zero-lookahead rejection.
  Engine(Network& net, const EngineConfig& cfg);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Stages one packet; events enter the owning shard's heap. seq is the
  // injection index. Must be called while quiesced (between runs).
  // Send times must be non-decreasing per the roughly-monotone query
  // contract (asserted).
  std::uint32_t inject(const PathSpec& path, TimePoint send_time,
                       TrafficClass cls = TrafficClass::kData);

  // Processes every pending event with at < until (run_to_end: all of
  // them). Spawns shards-1 workers; shard 0 runs on the caller.
  void run_until(TimePoint until);
  void run_to_end() { run_until(TimePoint::max()); }

  [[nodiscard]] const std::vector<PacketOutcome>& results() const { return results_; }
  [[nodiscard]] std::size_t injected() const { return packets_.size(); }
  [[nodiscard]] const ShardPlan& plan() const { return plan_; }

  // FNV chain over (seq, outcome) for every finished packet, in seq
  // order — the bench checksum; identical at any shard count.
  [[nodiscard]] std::uint64_t checksum() const;

  struct Stats {
    // Shard-count-invariant (part of the canonical snapshot).
    std::uint64_t processed_events = 0;
    std::int64_t delivered = 0;
    std::int64_t dropped_random = 0;
    std::int64_t dropped_burst = 0;
    std::int64_t dropped_outage = 0;
    std::int64_t dropped_injected = 0;
    // Diagnostics: deterministic per shard count (windows, handoffs) or
    // timing-dependent (backpressure stalls); excluded from snapshots
    // and checksums.
    std::uint64_t windows = 0;
    std::uint64_t handoffs = 0;
    std::uint64_t backpressure_stalls = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  // Canonical snapshot of engine + network state (engine.h header
  // comment). Both require a quiesced engine; restore_state expects a
  // freshly constructed Engine over an identically constructed Network
  // (any shard count) with no traffic yet.
  void save_state(snap::Encoder& e) const;
  void restore_state(snap::Decoder& d);

 private:
  struct Event {
    TimePoint at;
    std::uint32_t seq = 0;
    std::uint32_t hop = 0;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  struct Packet {
    PathSpec path;
    TimePoint send;
    TrafficClass cls = TrafficClass::kData;
  };
  // Shared per-run control block, written only in the window barrier's
  // completion step (single thread, all others blocked in the barrier).
  struct WindowControl {
    TimePoint horizon = TimePoint::epoch();
    TimePoint gen_target = TimePoint::epoch();
    bool done = false;
  };

  struct RunSync;
  void worker(std::size_t shard, RunSync& sync);
  void push_event(std::size_t shard, const Event& ev);
  bool drain_incoming(std::size_t shard);
  void process_event(std::size_t shard, const Event& ev);
  void stage(std::size_t from_shard, std::size_t to_shard, const Event& ev);

  [[nodiscard]] SpscQueue<Handoff>& queue(std::size_t from, std::size_t to) {
    return *queues_[from * static_cast<std::size_t>(cfg_.shards) + to];
  }

  Network& net_;
  EngineConfig cfg_;
  ShardPlan plan_;
  Duration window_;  // min(plan lookahead, cfg.max_window)

  std::vector<Packet> packets_;
  std::vector<PacketOutcome> results_;

  std::vector<std::vector<Event>> heaps_;  // per shard, binary heap
  // K*K queues, row = producer shard (atomics make SpscQueue immovable,
  // hence the indirection).
  std::vector<std::unique_ptr<SpscQueue<Handoff>>> queues_;
  std::vector<TimePoint> gen_done_;    // per shard pregeneration grid mark
  std::vector<TimePoint> next_event_;  // per shard, published at exchange

  // Per-shard stat deltas, merged deterministically (ascending shard)
  // after every run.
  std::vector<Stats> shard_stats_;
  Stats stats_;
  WindowControl ctl_;
  TimePoint max_inject_;
};

}  // namespace ronpath::pdes

#endif  // RONPATH_PDES_ENGINE_H_
