// Batched, quantized pregeneration of per-component loss timelines —
// the per-shard advance loop of the PDES engine and the parallel
// generation service for the sequenced (closed-loop) benches.
//
// A component's burst/episode/outage layout is a pure function of its
// forked RNG stream and the SEQUENCE of generation horizons it is asked
// for (loss_process.h): generate_segment restarts the exponential-gap
// chain at every horizon, so two runs only agree bit-for-bit when they
// drive each component through the same horizons in the same order.
// Query-driven generation would make that sequence depend on which
// packets a shard happens to process — a shard-count-dependent quantity.
//
// The fix is to quantize: every component is always advanced through
// the same epoch-anchored grid (kAdvanceStride apart), one grid point
// at a time, far enough ahead of the query watermark that sample()
// never has to generate on its own. The grid is global and the walk is
// per-component, so the horizon sequence — and therefore every byte of
// component state — is identical at any shard count and under any
// thread interleaving.
//
// Within one grid point, components advance kAdvanceBatch (16) at a
// time per call: the batch amortizes dispatch and keeps the generator
// working set resident, which is as far as "SIMD" can honestly go here
// — the arrival chains draw a data-dependent number of variates per
// component, so fixed-width lanes would diverge immediately (DESIGN.md
// §13 expands on this).

#ifndef RONPATH_PDES_ADVANCE_H_
#define RONPATH_PDES_ADVANCE_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "net/network.h"
#include "pdes/partition.h"
#include "util/time.h"

namespace ronpath::pdes {

// Grid spacing of the pregeneration horizons. Coarse enough that grid
// crossings are rare per simulated second, fine enough that the
// retained-interval window (queries lag generation by at most
// stride + margin) stays small.
inline constexpr Duration kAdvanceStride = Duration::seconds(10);
// How far generation runs ahead of the query watermark: queries reach
// at most kQuerySafety past the watermark (in-flight packets), and
// sample() itself wants kGenLookahead of slack before it would generate.
inline constexpr Duration kAdvanceMargin = kQuerySafety + kGenLookahead;
// Components advanced per inner call of the per-shard advance loop.
inline constexpr std::size_t kAdvanceBatch = 16;

// Advances components[first, first+count) to grid point `q` in index
// order. `count` is capped at kAdvanceBatch by the callers.
void pregenerate_batch(Network& net, const std::uint32_t* components, std::size_t count,
                       TimePoint q);

// Walks one shard's component list to grid point `q`, kAdvanceBatch per
// call. Thread-safe across shards (disjoint component sets).
void advance_shard(Network& net, const std::vector<std::uint32_t>& components, TimePoint q);

// Generation service for the sequenced transmit path (bench_fault_matrix
// / bench_full_eval with --shards): Network calls advance_to whenever
// its send watermark crosses the armed threshold, and the service walks
// every component through the missing grid points — one shard per
// worker thread, batch-by-batch. Because the grid is fixed and each
// quantum is fully applied before the next, the resulting component
// state is bit-identical at any shard count, including 1 (inline, no
// threads).
class AdvanceService final : public AdvanceHook {
 public:
  AdvanceService(Network& net, ShardPlan plan);
  ~AdvanceService() override;

  AdvanceService(const AdvanceService&) = delete;
  AdvanceService& operator=(const AdvanceService&) = delete;

  // AdvanceHook: returns the next watermark threshold at which Network
  // should call again. Replaying grid points that are already generated
  // is a no-op, so a freshly constructed service behind a restored
  // Network re-arms itself correctly on the first transmit.
  TimePoint advance_to(TimePoint watermark) override;

 private:
  void advance_quantum(TimePoint q);
  void worker(std::size_t shard);

  Network& net_;
  ShardPlan plan_;
  TimePoint done_ = TimePoint::epoch();  // grid generated through here

  // Worker rendezvous (only used when plan_.shards > 1).
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  TimePoint job_q_ = TimePoint::epoch();
  std::uint64_t job_generation_ = 0;
  std::size_t workers_done_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace ronpath::pdes

#endif  // RONPATH_PDES_ADVANCE_H_
