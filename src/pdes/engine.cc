#include "pdes/engine.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cassert>
#include <functional>
#include <stdexcept>
#include <thread>

#include "snapshot/codec.h"

namespace ronpath::pdes {

// Per-run synchronization. The window barrier's completion step runs on
// exactly one thread while every worker is blocked in the barrier, so it
// may read the published next-event times and write the control block
// without atomics. The exchange rendezvous is a counting spin barrier:
// waiting shards keep draining their incoming queues so a producer stuck
// in push-or-drain backpressure always finds its consumer making room.
struct Engine::RunSync {
  std::barrier<std::function<void()>> window;
  std::atomic<std::uint64_t> exchange_arrivals{0};
  std::size_t shards;

  RunSync(std::ptrdiff_t n, std::function<void()> completion)
      : window(n, std::move(completion)), shards(static_cast<std::size_t>(n)) {}
};

Engine::Engine(Network& net, const EngineConfig& cfg)
    : net_(net), cfg_(cfg), plan_(ShardPlan::build(net, cfg.shards)) {
  if (!net_.sharded_underlay()) {
    throw std::logic_error(
        "pdes: Engine requires Network::enable_sharded_underlay() before any traffic "
        "(per-component RNG substreams are what make shard-parallel queries deterministic)");
  }
  window_ = std::min(plan_.lookahead, cfg_.max_window);
  const auto k = static_cast<std::size_t>(cfg_.shards);
  heaps_.resize(k);
  gen_done_.assign(k, TimePoint::epoch());
  next_event_.assign(k, TimePoint::max());
  shard_stats_.assign(k, Stats{});
  queues_.reserve(k * k);
  for (std::size_t i = 0; i < k * k; ++i) {
    queues_.push_back(std::make_unique<SpscQueue<Handoff>>(cfg_.handoff_capacity));
  }
}

std::uint32_t Engine::inject(const PathSpec& path, TimePoint send_time, TrafficClass cls) {
  assert(send_time >= max_inject_ && "inject times must be non-decreasing");
  max_inject_ = send_time;
  const auto seq = static_cast<std::uint32_t>(packets_.size());
  packets_.push_back({path, send_time, cls});
  results_.emplace_back();

  Topology::Hop hops[Topology::kMaxHops];
  const std::size_t n_hops = net_.topology().hops_into(path, hops);

  // Probe blackholes act at the injection instant, before the first hop
  // (mirrors Network::transmit).
  const FaultHook* fault = net_.fault_hook();
  if (fault && cls == TrafficClass::kProbe &&
      (fault->probe_blackhole(path.src, send_time) ||
       fault->probe_blackhole(path.dst, send_time))) {
    PacketOutcome& out = results_[seq];
    out.done = true;
    out.delivered = false;
    out.cause = DropCause::kInjected;
    out.drop_component = n_hops == 0 ? 0 : static_cast<std::uint32_t>(hops[0].component);
    ++stats_.dropped_injected;
    return seq;
  }

  push_event(plan_.component_shard[hops[0].component], {send_time, seq, 0});
  return seq;
}

void Engine::push_event(std::size_t shard, const Event& ev) {
  heaps_[shard].push_back(ev);
  std::push_heap(heaps_[shard].begin(), heaps_[shard].end(), EventLater{});
}

bool Engine::drain_incoming(std::size_t shard) {
  bool any = false;
  Handoff h;
  for (std::size_t src = 0; src < static_cast<std::size_t>(cfg_.shards); ++src) {
    if (src == shard) continue;
    while (queue(src, shard).try_pop(h)) {
      push_event(shard, {h.at, h.seq, h.hop});
      any = true;
    }
  }
  return any;
}

void Engine::stage(std::size_t from_shard, std::size_t to_shard, const Event& ev) {
  const Handoff h{ev.at, ev.seq, static_cast<std::uint16_t>(ev.hop),
                  static_cast<std::uint16_t>(from_shard)};
  ++shard_stats_[from_shard].handoffs;
  SpscQueue<Handoff>& q = queue(from_shard, to_shard);
  while (!q.try_push(h)) {
    // Push-or-drain: make room in our own inbox (our producers are the
    // consumers of this full queue, transitively) instead of blocking.
    // Drained events carry at >= horizon, so absorbing them mid-window
    // never changes what this window processes.
    ++shard_stats_[from_shard].backpressure_stalls;
    if (!drain_incoming(from_shard)) std::this_thread::yield();
  }
}

void Engine::process_event(std::size_t shard, const Event& ev) {
  Stats& st = shard_stats_[shard];
  ++st.processed_events;

  const Packet& p = packets_[ev.seq];
  Topology::Hop hops[Topology::kMaxHops];
  const std::size_t n_hops = net_.topology().hops_into(p.path, hops);
  const std::size_t ci = hops[ev.hop].component;

  PacketOutcome& out = results_[ev.seq];
  const FaultHook* fault = net_.fault_hook();
  if (fault && fault->component_down(ci, ev.at)) {
    out.done = true;
    out.delivered = false;
    out.cause = DropCause::kInjected;
    out.drop_component = static_cast<std::uint32_t>(ci);
    ++st.dropped_injected;
    return;
  }

  const Network::HopOutcome hop = net_.traverse_hop(ci, ev.at);
  if (hop.dropped) {
    out.done = true;
    out.delivered = false;
    out.cause = hop.cause;
    out.drop_component = static_cast<std::uint32_t>(ci);
    switch (hop.cause) {
      case DropCause::kRandom: ++st.dropped_random; break;
      case DropCause::kBurst: ++st.dropped_burst; break;
      case DropCause::kOutage: ++st.dropped_outage; break;
      case DropCause::kNone:
      case DropCause::kInjected: break;
    }
    return;
  }

  TimePoint t = ev.at + hop.delay;
  if (hops[ev.hop].forward_after) t += net_.config().forward_delay;

  if (ev.hop + 1 == n_hops) {
    out.done = true;
    out.delivered = true;
    out.cause = DropCause::kNone;
    out.latency = t - p.send;
    ++st.delivered;
    return;
  }

  const Event next{t, ev.seq, ev.hop + 1};
  const std::size_t owner = plan_.component_shard[hops[ev.hop + 1].component];
  if (owner == shard) {
    push_event(shard, next);
  } else {
    stage(shard, owner, next);
  }
}

void Engine::worker(std::size_t shard, RunSync& sync) {
  std::uint64_t exchange_round = 0;
  std::vector<Event>& heap = heaps_[shard];
  next_event_[shard] = heap.empty() ? TimePoint::max() : heap.front().at;

  for (;;) {
    sync.window.arrive_and_wait();  // completion step computes ctl_
    if (ctl_.done) break;

    // Per-shard advance loop: pregenerate this shard's components
    // through every grid point the window can query, batch-by-batch
    // (advance.h). The grid is epoch-anchored and walked point by
    // point, so the horizon sequence per component is identical at any
    // shard count.
    while (gen_done_[shard] < ctl_.gen_target) {
      gen_done_[shard] += kAdvanceStride;
      advance_shard(net_, plan_.shard_components[shard], gen_done_[shard]);
    }

    while (!heap.empty() && heap.front().at < ctl_.horizon) {
      std::pop_heap(heap.begin(), heap.end(), EventLater{});
      const Event ev = heap.back();
      heap.pop_back();
      process_event(shard, ev);
    }

    // Exchange rendezvous: spin-drain until every shard has finished
    // pushing this window's handoffs, then collect the stragglers.
    ++exchange_round;
    sync.exchange_arrivals.fetch_add(1, std::memory_order_acq_rel);
    while (sync.exchange_arrivals.load(std::memory_order_acquire) <
           sync.shards * exchange_round) {
      if (!drain_incoming(shard)) std::this_thread::yield();
    }
    drain_incoming(shard);

    next_event_[shard] = heap.empty() ? TimePoint::max() : heap.front().at;
  }
}

void Engine::run_until(TimePoint until) {
  const auto k = static_cast<std::size_t>(cfg_.shards);

  const auto completion = [this, until] {
    TimePoint w = TimePoint::max();
    for (const TimePoint t : next_event_) w = std::min(w, t);
    if (w == TimePoint::max() || w >= until) {
      ctl_.done = true;
      return;
    }
    ctl_.done = false;
    // horizon = min(w + window_, until), saturating against overflow
    // (run_to_end passes until = TimePoint::max()).
    TimePoint horizon = until;
    if (w.nanos_since_epoch() <=
        TimePoint::max().nanos_since_epoch() - window_.count_nanos()) {
      horizon = std::min(horizon, w + window_);
    }
    ctl_.horizon = horizon;
    ctl_.gen_target = horizon;
    ++stats_.windows;
  };

  RunSync sync(static_cast<std::ptrdiff_t>(k), completion);
  std::vector<std::thread> threads;
  threads.reserve(k - 1);
  for (std::size_t s = 1; s < k; ++s) {
    threads.emplace_back([this, s, &sync] { worker(s, sync); });
  }
  worker(0, sync);
  for (std::thread& t : threads) t.join();

  // Deterministic merge: integer sums in ascending shard order.
  for (Stats& s : shard_stats_) {
    stats_.processed_events += s.processed_events;
    stats_.delivered += s.delivered;
    stats_.dropped_random += s.dropped_random;
    stats_.dropped_burst += s.dropped_burst;
    stats_.dropped_outage += s.dropped_outage;
    stats_.dropped_injected += s.dropped_injected;
    stats_.handoffs += s.handoffs;
    stats_.backpressure_stalls += s.backpressure_stalls;
    s = Stats{};
  }
}

std::uint64_t Engine::checksum() const {
  std::uint64_t h = snap::fnv1a_u64(results_.size(), 0xcbf29ce484222325ULL);
  for (std::size_t i = 0; i < results_.size(); ++i) {
    const PacketOutcome& r = results_[i];
    if (!r.done) continue;
    h = snap::fnv1a_u64(i, h);
    h = snap::fnv1a_u64(static_cast<std::uint64_t>(r.delivered), h);
    h = snap::fnv1a_u64(static_cast<std::uint64_t>(r.cause), h);
    h = snap::fnv1a_u64(r.drop_component, h);
    h = snap::fnv1a_u64(
        r.delivered ? static_cast<std::uint64_t>(r.latency.count_nanos()) : 0, h);
  }
  return h;
}

void Engine::save_state(snap::Encoder& e) const {
  e.tag("PDES");
  e.time(max_inject_);

  e.u64(packets_.size());
  for (const Packet& p : packets_) {
    e.u32(p.path.src);
    e.u32(p.path.dst);
    e.u32(p.path.via);
    e.u32(p.path.via2);
    e.time(p.send);
    e.u8(static_cast<std::uint8_t>(p.cls));
  }
  for (const PacketOutcome& r : results_) {
    e.u8(static_cast<std::uint8_t>((r.done ? 1 : 0) | (r.delivered ? 2 : 0)));
    e.u8(static_cast<std::uint8_t>(r.cause));
    e.u32(r.drop_component);
    e.duration(r.latency);
  }

  // Pending events, canonicalized: merged across shards and sorted by
  // (at, seq) — the same total order the heaps process — so the bytes
  // do not depend on this engine's shard count.
  std::vector<Event> pending;
  for (const auto& heap : heaps_) pending.insert(pending.end(), heap.begin(), heap.end());
  std::sort(pending.begin(), pending.end(), [](const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  });
  e.u64(pending.size());
  for (const Event& ev : pending) {
    e.time(ev.at);
    e.u32(ev.seq);
    e.u32(ev.hop);
  }

  // Shard-count-invariant stats only; windows/handoffs/backpressure are
  // per-run diagnostics of THIS shard count and stay out.
  e.u64(stats_.processed_events);
  e.i64(stats_.delivered);
  e.i64(stats_.dropped_random);
  e.i64(stats_.dropped_burst);
  e.i64(stats_.dropped_outage);
  e.i64(stats_.dropped_injected);

  net_.save_state(e);
}

void Engine::restore_state(snap::Decoder& d) {
  if (!packets_.empty()) {
    throw snap::SnapshotError("pdes: restore_state requires a fresh engine (no traffic yet)");
  }
  d.expect_tag("PDES");
  max_inject_ = d.time();

  const std::uint64_t n_packets = d.count(25);
  packets_.reserve(n_packets);
  for (std::uint64_t i = 0; i < n_packets; ++i) {
    Packet p;
    p.path.src = static_cast<NodeId>(d.u32());
    p.path.dst = static_cast<NodeId>(d.u32());
    p.path.via = static_cast<NodeId>(d.u32());
    p.path.via2 = static_cast<NodeId>(d.u32());
    p.send = d.time();
    p.cls = static_cast<TrafficClass>(d.u8());
    packets_.push_back(p);
  }
  results_.resize(n_packets);
  for (PacketOutcome& r : results_) {
    const std::uint8_t flags = d.u8();
    r.done = (flags & 1) != 0;
    r.delivered = (flags & 2) != 0;
    r.cause = static_cast<DropCause>(d.u8());
    r.drop_component = d.u32();
    r.latency = d.duration();
  }

  const std::uint64_t n_events = d.count(16);
  for (std::uint64_t i = 0; i < n_events; ++i) {
    Event ev;
    ev.at = d.time();
    ev.seq = d.u32();
    ev.hop = d.u32();
    if (ev.seq >= packets_.size()) {
      throw snap::SnapshotError("pdes: pending event references an unknown packet");
    }
    // Rehome under THIS engine's partition — the stream does not know
    // how many shards wrote it.
    Topology::Hop hops[Topology::kMaxHops];
    const std::size_t n_hops = net_.topology().hops_into(packets_[ev.seq].path, hops);
    if (ev.hop >= n_hops) {
      throw snap::SnapshotError("pdes: pending event hop index out of range");
    }
    push_event(plan_.component_shard[hops[ev.hop].component], ev);
  }

  stats_ = Stats{};
  stats_.processed_events = d.u64();
  stats_.delivered = d.i64();
  stats_.dropped_random = d.i64();
  stats_.dropped_burst = d.i64();
  stats_.dropped_outage = d.i64();
  stats_.dropped_injected = d.i64();

  net_.restore_state(d);
}

}  // namespace ronpath::pdes
