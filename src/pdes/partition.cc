#include "pdes/partition.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

namespace ronpath::pdes {
namespace {

// Symmetric affinity between two sites: the smaller of the two directed
// core-segment floors. Sites glued by a fast segment want to share a
// shard, since a cross-shard pair this tight would cap the lookahead.
Duration pair_floor(const Network& net, NodeId a, NodeId b) {
  const Topology& topo = net.topology();
  return std::min(net.hop_floor(topo.core_index(a, b)), net.hop_floor(topo.core_index(b, a)));
}

}  // namespace

ShardPlan ShardPlan::build(const Network& net, int shards) {
  if (shards < 1) {
    throw std::invalid_argument("pdes: shard count must be >= 1 (got " +
                                std::to_string(shards) + ")");
  }
  const Topology& topo = net.topology();
  const std::size_t n = topo.size();

  ShardPlan plan;
  plan.shards = shards;
  plan.site_shard.assign(n, 0);

  if (shards > 1) {
    // Greedy single-linkage agglomeration. Clusters are keyed by their
    // smallest member site, so every choice below is deterministic.
    struct Cluster {
      NodeId id;  // smallest member
      std::vector<NodeId> sites;
    };
    std::vector<Cluster> clusters(n);
    for (NodeId s = 0; s < n; ++s) clusters[s] = {s, {s}};

    const std::size_t cap =
        (n + static_cast<std::size_t>(shards) - 1) / static_cast<std::size_t>(shards);
    const auto linkage = [&](const Cluster& x, const Cluster& y) {
      Duration best = Duration::max();
      for (NodeId a : x.sites) {
        for (NodeId b : y.sites) best = std::min(best, pair_floor(net, a, b));
      }
      return best;
    };

    while (clusters.size() > static_cast<std::size_t>(shards)) {
      std::size_t bi = 0, bj = 0;
      bool found = false;
      // Pass 0 honors the size cap and merges the tightest pair (small
      // cross floors inside one shard maximize the lookahead). Pass 1 is
      // only reached when every capped pair is exhausted (e.g. n=6 K=2
      // stuck at sizes 2/2/2); it must break the deadlock WITHOUT wrecking
      // balance, so it merges the smallest combined pair instead — the
      // overflow is then bounded by one deadlocked partner, not by
      // whichever mega-cluster happened to share a fast segment.
      {
        Duration best = Duration::max();
        for (std::size_t i = 0; i < clusters.size(); ++i) {
          for (std::size_t j = i + 1; j < clusters.size(); ++j) {
            if (clusters[i].sites.size() + clusters[j].sites.size() > cap) continue;
            const Duration d = linkage(clusters[i], clusters[j]);
            if (!found || d < best) {
              best = d;
              bi = i;
              bj = j;
              found = true;
            }
          }
        }
      }
      if (!found) {
        std::size_t best_size = std::numeric_limits<std::size_t>::max();
        Duration best_floor = Duration::max();
        for (std::size_t i = 0; i < clusters.size(); ++i) {
          for (std::size_t j = i + 1; j < clusters.size(); ++j) {
            const std::size_t size = clusters[i].sites.size() + clusters[j].sites.size();
            const Duration d = linkage(clusters[i], clusters[j]);
            if (!found || size < best_size || (size == best_size && d < best_floor)) {
              best_size = size;
              best_floor = d;
              bi = i;
              bj = j;
              found = true;
            }
          }
        }
      }
      Cluster& dst = clusters[bi];
      Cluster& src = clusters[bj];
      dst.sites.insert(dst.sites.end(), src.sites.begin(), src.sites.end());
      dst.id = std::min(dst.id, src.id);
      clusters.erase(clusters.begin() + static_cast<std::ptrdiff_t>(bj));
    }

    std::sort(clusters.begin(), clusters.end(),
              [](const Cluster& a, const Cluster& b) { return a.id < b.id; });
    for (std::size_t k = 0; k < clusters.size(); ++k) {
      for (NodeId s : clusters[k].sites) plan.site_shard[s] = static_cast<std::uint32_t>(k);
    }
  }

  // Components follow their site-a owner; derive the lookahead bound
  // from the cross-shard core floors while we walk them.
  const std::size_t n_components = topo.component_count();
  plan.component_shard.assign(n_components, 0);
  plan.shard_components.assign(static_cast<std::size_t>(shards), {});
  plan.lookahead = Duration::max();
  for (std::size_t ci = 0; ci < n_components; ++ci) {
    const ComponentId id = topo.component(ci);
    const std::uint32_t owner = plan.site_shard[id.a];
    plan.component_shard[ci] = owner;
    plan.shard_components[owner].push_back(static_cast<std::uint32_t>(ci));
    if (id.kind == ComponentId::Kind::kCore && plan.site_shard[id.a] != plan.site_shard[id.b]) {
      const Duration floor = net.hop_floor(ci);
      if (floor <= Duration::zero()) {
        throw std::runtime_error(
            "pdes: zero lookahead — core segment " + topo.site(id.a).name + " -> " +
            topo.site(id.b).name +
            " crosses shards with a non-positive delay floor; conservative synchronization "
            "needs every cross-shard hop to take strictly positive time (raise fixed_delay "
            "or use fewer shards)");
      }
      plan.lookahead = std::min(plan.lookahead, floor);
    }
  }
  return plan;
}

}  // namespace ronpath::pdes
