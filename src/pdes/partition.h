// Shard partitioning and conservative-lookahead bound for the PDES
// engine (see DESIGN.md §13).
//
// Ownership rule: every site's four edge components (up / down /
// prov_out / prov_in) and every core segment core(a, *) belong to the
// shard that owns site a. A packet's per-hop walk (up, prov_out,
// core(a,b), prov_in, down per leg) then crosses shards at most once
// per leg — on the core(a,b) -> prov_in(b) edge — so the lookahead
// bound only has to cover core segments between differently-owned
// sites.
//
// Lookahead: after a packet is processed at core(a,b) at time t, its
// next event is at t + delay(core(a,b)), and delay is bounded below by
// the segment's deterministic floor (fixed_delay + stretched
// propagation; jitter and queueing only add). The engine may therefore
// process a window [W, W+L) in parallel, where
//   L = min over cross-shard ordered pairs (a,b) of floor(core(a,b)).
// A configuration whose floor is not strictly positive cannot be
// sharded conservatively; build() rejects it with a diagnostic naming
// the offending pair instead of silently producing a racy schedule.
//
// The site clustering is a deterministic greedy single-linkage
// agglomeration: sites joined by small-floor core segments merge first
// (keeping tight pairs inside one shard maximizes L), subject to a
// ceil(n / shards) size cap for load balance; ties break on
// (floor, cluster ids), so the plan is a pure function of
// (topology, floors, shard count).

#ifndef RONPATH_PDES_PARTITION_H_
#define RONPATH_PDES_PARTITION_H_

#include <cstdint>
#include <vector>

#include "net/network.h"
#include "util/time.h"

namespace ronpath::pdes {

struct ShardPlan {
  int shards = 1;
  // Owning shard per site / per component (component indices follow
  // net/topology.h numbering).
  std::vector<std::uint32_t> site_shard;
  std::vector<std::uint32_t> component_shard;
  // Conservative window length; Duration::max() when shards == 1 (no
  // cross-shard pair constrains the window).
  Duration lookahead = Duration::max();

  // Components owned by each shard, in ascending component order (the
  // per-shard advance loops iterate these).
  std::vector<std::vector<std::uint32_t>> shard_components;

  // Builds the plan for `net`'s resolved topology and per-component
  // delay floors. Throws std::invalid_argument for shards < 1 and
  // std::runtime_error (zero-lookahead) when a cross-shard core floor
  // is not strictly positive.
  [[nodiscard]] static ShardPlan build(const Network& net, int shards);
};

}  // namespace ronpath::pdes

#endif  // RONPATH_PDES_PARTITION_H_
