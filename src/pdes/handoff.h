// Fixed-capacity single-producer / single-consumer handoff queues for
// cross-shard packet exchange.
//
// Each ordered shard pair (p, c) owns one queue: only shard p's worker
// pushes, only shard c's worker pops. The queue is a power-of-two ring
// indexed by free-running head/tail counters; the producer publishes a
// slot with a release store of head_, the consumer retires it with a
// release store of tail_, so slot contents synchronize through exactly
// one acquire load per side and no locks.
//
// Capacity is fixed by design (the PDES engine bounds in-flight memory
// per shard pair). A full queue makes try_push fail; the engine reacts
// with "push or drain" backpressure (see engine.cc) rather than
// blocking, which is what keeps the shard workers deadlock-free.
//
// Every handoff is stamped (at, src_shard, seq). seq is the packet's
// global injection index and unique per pending event, so ordering by
// (at, seq) — what the per-shard heaps do — is a total order that does
// not depend on which queue delivered the event or when it was drained:
// the merge is seed-fixed at any shard count.

#ifndef RONPATH_PDES_HANDOFF_H_
#define RONPATH_PDES_HANDOFF_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/time.h"

namespace ronpath::pdes {

// One pending hop traversal, staged between shards. `at` is when the
// packet reaches component `hop` of its path; `seq` identifies the
// packet (injection order); `src_shard` is the stamping shard.
struct Handoff {
  TimePoint at;
  std::uint32_t seq = 0;
  std::uint16_t hop = 0;
  std::uint16_t src_shard = 0;
};

template <typename T>
class SpscQueue {
 public:
  // `capacity` is rounded up to a power of two (minimum 2).
  explicit SpscQueue(std::size_t capacity = 1024) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  // Producer side. Returns false when the queue is full.
  bool try_push(const T& value) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail > mask_) return false;
    slots_[head & mask_] = value;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns false when the queue is empty.
  bool try_pop(T& out) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return false;
    out = slots_[tail & mask_];
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Observers; exact only on the owning side (racy but conservative
  // elsewhere, which is all the engine's assertions need).
  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_acquire) == tail_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  // Free-running counters; wrap-around is harmless at 64 bits.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
};

}  // namespace ronpath::pdes

#endif  // RONPATH_PDES_HANDOFF_H_
