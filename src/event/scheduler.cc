#include "event/scheduler.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ronpath {

void EventHandle::cancel() {
  const auto pool = pool_.lock();
  if (!pool) return;  // scheduler gone: nothing left to cancel
  if (slot_ >= pool->slots.size()) return;
  internal::EventSlot& sl = pool->slots[slot_];
  if (sl.gen != gen_) return;  // already fired, cancelled, or slot reused
  ++sl.gen;       // queue entry becomes a tombstone; slot freed when it pops
  sl.cb.reset();  // release captures eagerly
}

bool EventHandle::pending() const {
  const auto pool = pool_.lock();
  if (!pool) return false;
  return slot_ < pool->slots.size() && pool->slots[slot_].gen == gen_;
}

Scheduler::Scheduler() : pool_(std::make_shared<internal::SlotPool>()) {}

EventHandle Scheduler::schedule_at(TimePoint at, Callback cb) {
  assert(at >= now_ && "cannot schedule into the past");
  internal::SlotPool& pool = *pool_;
  std::uint32_t slot;
  if (!pool.free_list.empty()) {
    slot = pool.free_list.back();
    pool.free_list.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(pool.slots.size());
    pool.slots.emplace_back();
  }
  internal::EventSlot& sl = pool.slots[slot];
  sl.cb = std::move(cb);
  heap_.push_back(Entry{at, next_seq_++, sl.gen, slot});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return EventHandle(pool_, slot, sl.gen);
}

EventHandle Scheduler::schedule_after(Duration delay, Callback cb) {
  if (delay.is_negative()) delay = Duration::zero();
  return schedule_at(now_ + delay, std::move(cb));
}

void Scheduler::run_until(TimePoint until) {
  while (!heap_.empty() && heap_.front().at <= until) step();
  if (now_ < until) now_ = until;
}

void Scheduler::run_all() {
  while (step()) {
  }
}

bool Scheduler::step() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Entry ev = heap_.back();
  heap_.pop_back();
  now_ = ev.at;
  internal::EventSlot& sl = pool_->slots[ev.slot];
  if (sl.gen == ev.gen) {
    ++sl.gen;
    Callback cb = std::move(sl.cb);
    pool_->free_list.push_back(ev.slot);
    ++dispatched_;
    // `sl` may dangle past this point: the callback can schedule events
    // and grow the slot vector.
    cb();
  } else {
    pool_->free_list.push_back(ev.slot);  // cancelled tombstone
  }
  return true;
}

PeriodicTask::PeriodicTask(Scheduler& sched, Duration period, Duration initial_delay, Tick tick)
    : sched_(sched), period_(period), tick_(std::move(tick)) {
  assert(period > Duration::zero());
  arm(initial_delay);
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::stop() {
  running_ = false;
  handle_.cancel();
}

void PeriodicTask::arm(Duration delay) {
  handle_ = sched_.schedule_after(delay, [this] {
    if (!running_) return;
    tick_();
    if (running_) arm(period_);
  });
}

}  // namespace ronpath
