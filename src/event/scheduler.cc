#include "event/scheduler.h"

#include <cassert>
#include <utility>

namespace ronpath {

void EventHandle::cancel() {
  if (alive_) *alive_ = false;
}

bool EventHandle::pending() const { return alive_ && *alive_; }

EventHandle Scheduler::schedule_at(TimePoint at, Callback cb) {
  assert(at >= now_ && "cannot schedule into the past");
  auto alive = std::make_shared<bool>(true);
  queue_.push(Event{at, next_seq_++, std::move(cb), alive});
  ++live_events_;
  return EventHandle(std::move(alive));
}

EventHandle Scheduler::schedule_after(Duration delay, Callback cb) {
  if (delay.is_negative()) delay = Duration::zero();
  return schedule_at(now_ + delay, std::move(cb));
}

void Scheduler::dispatch(Event& ev) {
  --live_events_;
  if (!*ev.alive) return;  // cancelled
  *ev.alive = false;
  ++dispatched_;
  ev.cb();
}

void Scheduler::run_until(TimePoint until) {
  while (!queue_.empty() && queue_.top().at <= until) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    dispatch(ev);
  }
  if (now_ < until) now_ = until;
}

void Scheduler::run_all() {
  while (step()) {
  }
}

bool Scheduler::step() {
  if (queue_.empty()) return false;
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.at;
  dispatch(ev);
  return true;
}

PeriodicTask::PeriodicTask(Scheduler& sched, Duration period, Duration initial_delay, Tick tick)
    : sched_(sched), period_(period), tick_(std::move(tick)) {
  assert(period > Duration::zero());
  arm(initial_delay);
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::stop() {
  running_ = false;
  handle_.cancel();
}

void PeriodicTask::arm(Duration delay) {
  handle_ = sched_.schedule_after(delay, [this] {
    if (!running_) return;
    tick_();
    if (running_) arm(period_);
  });
}

}  // namespace ronpath
