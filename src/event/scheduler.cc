#include "event/scheduler.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>

namespace ronpath {

void EventHandle::cancel() {
  const auto pool = pool_.lock();
  if (!pool) return;  // scheduler gone: nothing left to cancel
  if (slot_ >= pool->slots.size()) return;
  internal::EventSlot& sl = pool->slots[slot_];
  if (sl.gen != gen_) return;  // already fired, cancelled, or slot reused
  ++sl.gen;       // queue entry becomes a tombstone; slot freed when it pops
  sl.cb.reset();  // release captures eagerly
}

bool EventHandle::pending() const {
  const auto pool = pool_.lock();
  if (!pool) return false;
  return slot_ < pool->slots.size() && pool->slots[slot_].gen == gen_;
}

Scheduler::Scheduler() : pool_(std::make_shared<internal::SlotPool>()) {}

EventHandle Scheduler::schedule_entry(TimePoint at, std::uint64_t seq, Callback cb) {
  internal::SlotPool& pool = *pool_;
  std::uint32_t slot;
  if (!pool.free_list.empty()) {
    slot = pool.free_list.back();
    pool.free_list.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(pool.slots.size());
    pool.slots.emplace_back();
  }
  internal::EventSlot& sl = pool.slots[slot];
  sl.cb = std::move(cb);
  heap_.push_back(Entry{at, seq, sl.gen, slot});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return EventHandle(pool_, slot, sl.gen);
}

EventHandle Scheduler::schedule_at(TimePoint at, Callback cb) {
  assert(at >= now_ && "cannot schedule into the past");
  return schedule_entry(at, next_seq_++, std::move(cb));
}

EventHandle Scheduler::schedule_at_restored(TimePoint at, std::uint64_t seq, Callback cb) {
  assert(at >= now_ && "restored event precedes the restored clock");
  assert(seq < next_seq_ && "restored seq must predate the restored next_seq");
  return schedule_entry(at, seq, std::move(cb));
}

EventHandle Scheduler::schedule_after(Duration delay, Callback cb) {
  if (delay.is_negative()) delay = Duration::zero();
  return schedule_at(now_ + delay, std::move(cb));
}

void Scheduler::run_until(TimePoint until) {
  while (!heap_.empty() && heap_.front().at <= until) step();
  if (now_ < until) now_ = until;
}

void Scheduler::run_all() {
  while (step()) {
  }
}

bool Scheduler::step() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Entry ev = heap_.back();
  heap_.pop_back();
  now_ = ev.at;
  internal::EventSlot& sl = pool_->slots[ev.slot];
  if (sl.gen == ev.gen) {
    ++sl.gen;
    Callback cb = std::move(sl.cb);
    pool_->free_list.push_back(ev.slot);
    ++dispatched_;
    // `sl` may dangle past this point: the callback can schedule events
    // and grow the slot vector.
    cb();
  } else {
    pool_->free_list.push_back(ev.slot);  // cancelled tombstone
  }
  return true;
}

bool Scheduler::pending_entry(const EventHandle& h, TimePoint* at, std::uint64_t* seq) const {
  const auto pool = h.pool_.lock();
  if (pool.get() != pool_.get()) return false;  // foreign or inert handle
  if (h.slot_ >= pool->slots.size() || pool->slots[h.slot_].gen != h.gen_) return false;
  for (const Entry& e : heap_) {
    if (e.slot == h.slot_ && e.gen == h.gen_) {
      *at = e.at;
      *seq = e.seq;
      return true;
    }
  }
  return false;
}

void Scheduler::restore_clock(TimePoint now, std::uint64_t next_seq, std::uint64_t dispatched) {
  heap_.clear();
  internal::SlotPool& pool = *pool_;
  pool.free_list.clear();
  pool.free_list.reserve(pool.slots.size());
  for (std::size_t i = pool.slots.size(); i-- > 0;) {
    ++pool.slots[i].gen;  // outstanding handles to the old run go inert
    pool.slots[i].cb.reset();
    pool.free_list.push_back(static_cast<std::uint32_t>(i));
  }
  now_ = now;
  next_seq_ = next_seq;
  dispatched_ = dispatched;
}

void Scheduler::check_invariants(std::vector<std::string>& out) const {
  if (!std::is_heap(heap_.begin(), heap_.end(), Later{})) {
    out.push_back("scheduler: heap property violated");
  }
  const internal::SlotPool& pool = *pool_;
  for (const Entry& e : heap_) {
    if (e.at < now_) {
      out.push_back("scheduler: pending entry at " + e.at.since_epoch().to_string() +
                    " behind the clock " + now_.since_epoch().to_string());
    }
    if (e.seq >= next_seq_) {
      out.push_back("scheduler: entry seq " + std::to_string(e.seq) + " >= next_seq " +
                    std::to_string(next_seq_));
    }
    if (e.slot >= pool.slots.size()) {
      out.push_back("scheduler: entry slot " + std::to_string(e.slot) + " out of pool range");
    } else if (e.gen > pool.slots[e.slot].gen) {
      out.push_back("scheduler: entry generation " + std::to_string(e.gen) +
                    " ahead of its slot's generation");
    }
  }
  if (pool.free_list.size() + heap_.size() < pool.slots.size()) {
    // Every slot is either on the free list or referenced by >= 1 heap
    // entry (live or tombstoned); fewer means a leaked slot.
    out.push_back("scheduler: slot pool leak (" + std::to_string(pool.slots.size()) +
                  " slots, " + std::to_string(pool.free_list.size()) + " free, " +
                  std::to_string(heap_.size()) + " queued)");
  }
}

PeriodicTask::PeriodicTask(Scheduler& sched, Duration period, Duration initial_delay, Tick tick)
    : sched_(sched), period_(period), tick_(std::move(tick)) {
  assert(period > Duration::zero());
  arm(initial_delay);
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::stop() {
  running_ = false;
  handle_.cancel();
}

Scheduler::Callback PeriodicTask::tick_callback() {
  return [this] {
    if (!running_) return;
    tick_();
    if (running_) arm(period_);
  };
}

void PeriodicTask::arm(Duration delay) {
  handle_ = sched_.schedule_after(delay, tick_callback());
}

void PeriodicTask::restore_arm(TimePoint at, std::uint64_t seq) {
  handle_.cancel();
  running_ = true;
  handle_ = sched_.schedule_at_restored(at, seq, tick_callback());
}

}  // namespace ronpath
