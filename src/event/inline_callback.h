// Move-only type-erased void() callable with small-buffer storage.
//
// std::function costs a heap allocation for any capture larger than its
// (implementation-defined, ~16 byte) inline buffer, which made every
// scheduled event allocate on the hot path. This trims the abstraction to
// exactly what the scheduler needs - construct from a callable, move,
// invoke once, destroy - with a 48-byte inline buffer that fits every
// simulator callback; larger callables fall back to the heap instead of
// failing to compile.

#ifndef RONPATH_EVENT_INLINE_CALLBACK_H_
#define RONPATH_EVENT_INLINE_CALLBACK_H_

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ronpath {

class InlineCallback {
 public:
  static constexpr std::size_t kInlineSize = 48;

  InlineCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &kInlineVTable<Fn>;
    } else {
      *reinterpret_cast<Fn**>(buf_) = new Fn(std::forward<F>(f));
      vt_ = &kHeapVTable<Fn>;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept : vt_(other.vt_) {
    if (vt_ != nullptr) {
      vt_->relocate(buf_, other.buf_);
      other.vt_ = nullptr;
    }
  }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      vt_ = other.vt_;
      if (vt_ != nullptr) {
        vt_->relocate(buf_, other.buf_);
        other.vt_ = nullptr;
      }
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  void reset() {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const { return vt_ != nullptr; }

  void operator()() {
    assert(vt_ != nullptr && "invoking an empty InlineCallback");
    vt_->invoke(buf_);
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    // Move-constructs into dst from src and destroys src's value.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr VTable kInlineVTable = {
      [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
      [](void* dst, void* src) {
        Fn* s = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
      [](void* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); },
  };

  template <typename Fn>
  static constexpr VTable kHeapVTable = {
      [](void* p) { (**reinterpret_cast<Fn**>(p))(); },
      [](void* dst, void* src) { *reinterpret_cast<Fn**>(dst) = *reinterpret_cast<Fn**>(src); },
      [](void* p) { delete *reinterpret_cast<Fn**>(p); },
  };

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const VTable* vt_ = nullptr;
};

}  // namespace ronpath

#endif  // RONPATH_EVENT_INLINE_CALLBACK_H_
