// Discrete-event simulation core.
//
// A Scheduler owns the virtual clock and a min-heap of pending events.
// Components schedule callbacks at absolute or relative times and receive
// an EventHandle with which the event can be cancelled. Cancellation is
// lazy (tombstoned in the heap) so it is O(1).
//
// Determinism: events at identical timestamps fire in scheduling order
// (FIFO via a monotonically increasing sequence number), so a run is a pure
// function of (seed, configuration).
//
// Hot path: schedule_after performs zero heap allocations. Callbacks live
// in a recycled slot pool (InlineCallback small-buffer storage, heap only
// for oversized captures), heap entries are small PODs, and cancellation
// is a per-slot generation bump instead of a per-event shared_ptr<bool>.
// Handles stay safe after the event fires, after cancel, and even after
// the Scheduler itself is destroyed: they hold a weak reference to the
// slot pool plus the generation they armed, so a stale cancel simply
// misses.

#ifndef RONPATH_EVENT_SCHEDULER_H_
#define RONPATH_EVENT_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "event/inline_callback.h"
#include "util/time.h"

namespace ronpath {

class Scheduler;

namespace internal {

struct EventSlot {
  std::uint64_t gen = 0;  // bumped on fire and on cancel
  InlineCallback cb;
};

struct SlotPool {
  std::vector<EventSlot> slots;
  std::vector<std::uint32_t> free_list;
};

}  // namespace internal

// Cancellable reference to a scheduled event. Default-constructed handles
// are inert; cancel() on an already-fired event is a harmless no-op, and
// a handle may safely outlive the Scheduler it came from.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel();
  [[nodiscard]] bool pending() const;

 private:
  friend class Scheduler;
  EventHandle(std::weak_ptr<internal::SlotPool> pool, std::uint32_t slot, std::uint64_t gen)
      : pool_(std::move(pool)), slot_(slot), gen_(gen) {}

  std::weak_ptr<internal::SlotPool> pool_;
  std::uint32_t slot_ = 0;
  std::uint64_t gen_ = 0;
};

class Scheduler {
 public:
  using Callback = InlineCallback;

  Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }

  // Schedules `cb` at absolute time `at` (must not be before now()).
  EventHandle schedule_at(TimePoint at, Callback cb);
  // Schedules `cb` after `delay` (clamped to zero if negative).
  EventHandle schedule_after(Duration delay, Callback cb);

  // Runs events until the queue is empty or the clock passes `until`.
  void run_until(TimePoint until);
  // Runs every pending event (only safe if the event graph quiesces).
  void run_all();
  // Pops at most one queue entry (fired or cancelled tombstone); returns
  // false if the queue was empty.
  bool step();

  // Queue entries still pending, including cancelled-but-unpopped ones
  // (cancellation is lazy).
  [[nodiscard]] std::size_t pending_events() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t dispatched_events() const { return dispatched_; }
  [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }

  // Snapshot support ---------------------------------------------------
  //
  // Pending events are closures, so the scheduler itself cannot serialize
  // them; each owning component saves a re-arm descriptor instead. The
  // descriptor carries the original (at, seq) pair: re-arming through
  // schedule_at_restored with the saved seq reproduces the heap's firing
  // order exactly, including FIFO ties — the property that makes restored
  // runs byte-identical to uninterrupted ones.

  // Looks up the heap position of a still-pending event; returns false if
  // the handle is inert, fired, or cancelled. O(pending) scan — this runs
  // at checkpoint time, not on the event hot path.
  [[nodiscard]] bool pending_entry(const EventHandle& h, TimePoint* at,
                                   std::uint64_t* seq) const;

  // Resets the scheduler to the saved clock state: drops every queue
  // entry (bumping slot generations, so outstanding handles go inert) and
  // overwrites now/next_seq/dispatched. Owners then re-arm their saved
  // events via schedule_at_restored.
  void restore_clock(TimePoint now, std::uint64_t next_seq, std::uint64_t dispatched);

  // Re-arms an event with an explicit sequence number (must be < the
  // restored next_seq); used only during restore.
  EventHandle schedule_at_restored(TimePoint at, std::uint64_t seq, Callback cb);

  // Invariant auditor: heap property, slot/generation consistency,
  // sequence bounds, no entry behind the clock. Appends one message per
  // violation to `out`.
  void check_invariants(std::vector<std::string>& out) const;

 private:
  EventHandle schedule_entry(TimePoint at, std::uint64_t seq, Callback cb);

  struct Entry {
    TimePoint at;
    std::uint64_t seq;
    std::uint64_t gen;
    std::uint32_t slot;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  TimePoint now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::vector<Entry> heap_;  // std::push_heap/pop_heap min-heap via Later
  std::shared_ptr<internal::SlotPool> pool_;
};

// Repeating task: reschedules itself with a fixed or caller-computed period
// until stop() is called or the owning Scheduler stops being run.
class PeriodicTask {
 public:
  using Tick = std::function<void()>;
  // Fixed period; first fire after `initial_delay`.
  PeriodicTask(Scheduler& sched, Duration period, Duration initial_delay, Tick tick);
  ~PeriodicTask();
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop();
  [[nodiscard]] bool running() const { return running_; }

  // Snapshot support: the handle of the next pending tick (for saving its
  // re-arm descriptor) and explicit re-arming at a saved (at, seq).
  [[nodiscard]] const EventHandle& handle() const { return handle_; }
  void restore_arm(TimePoint at, std::uint64_t seq);

 private:
  void arm(Duration delay);
  [[nodiscard]] Scheduler::Callback tick_callback();

  Scheduler& sched_;
  Duration period_;
  Tick tick_;
  EventHandle handle_;
  bool running_ = true;
};

}  // namespace ronpath

#endif  // RONPATH_EVENT_SCHEDULER_H_
