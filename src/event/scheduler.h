// Discrete-event simulation core.
//
// A Scheduler owns the virtual clock and a min-heap of pending events.
// Components schedule callbacks at absolute or relative times and receive
// an EventHandle with which the event can be cancelled. Cancellation is
// lazy (tombstoned in the heap) so it is O(1).
//
// Determinism: events at identical timestamps fire in scheduling order
// (FIFO via a monotonically increasing sequence number), so a run is a pure
// function of (seed, configuration).

#ifndef RONPATH_EVENT_SCHEDULER_H_
#define RONPATH_EVENT_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/time.h"

namespace ronpath {

class Scheduler;

// Cancellable reference to a scheduled event. Default-constructed handles
// are inert; cancel() on an already-fired event is a harmless no-op.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel();
  [[nodiscard]] bool pending() const;

 private:
  friend class Scheduler;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class Scheduler {
 public:
  using Callback = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }

  // Schedules `cb` at absolute time `at` (must not be before now()).
  EventHandle schedule_at(TimePoint at, Callback cb);
  // Schedules `cb` after `delay` (clamped to zero if negative).
  EventHandle schedule_after(Duration delay, Callback cb);

  // Runs events until the queue is empty or the clock passes `until`.
  void run_until(TimePoint until);
  // Runs every pending event (only safe if the event graph quiesces).
  void run_all();
  // Fires at most one event; returns false if the queue was empty.
  bool step();

  [[nodiscard]] std::size_t pending_events() const { return live_events_; }
  [[nodiscard]] std::uint64_t dispatched_events() const { return dispatched_; }

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq;
    Callback cb;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void dispatch(Event& ev);

  TimePoint now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::size_t live_events_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

// Repeating task: reschedules itself with a fixed or caller-computed period
// until stop() is called or the owning Scheduler stops being run.
class PeriodicTask {
 public:
  using Tick = std::function<void()>;
  // Fixed period; first fire after `initial_delay`.
  PeriodicTask(Scheduler& sched, Duration period, Duration initial_delay, Tick tick);
  ~PeriodicTask();
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop();
  [[nodiscard]] bool running() const { return running_; }

 private:
  void arm(Duration delay);

  Scheduler& sched_;
  Duration period_;
  Tick tick_;
  EventHandle handle_;
  bool running_ = true;
};

}  // namespace ronpath

#endif  // RONPATH_EVENT_SCHEDULER_H_
