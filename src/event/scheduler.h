// Discrete-event simulation core.
//
// A Scheduler owns the virtual clock and a min-heap of pending events.
// Components schedule callbacks at absolute or relative times and receive
// an EventHandle with which the event can be cancelled. Cancellation is
// lazy (tombstoned in the heap) so it is O(1).
//
// Determinism: events at identical timestamps fire in scheduling order
// (FIFO via a monotonically increasing sequence number), so a run is a pure
// function of (seed, configuration).
//
// Hot path: schedule_after performs zero heap allocations. Callbacks live
// in a recycled slot pool (InlineCallback small-buffer storage, heap only
// for oversized captures), heap entries are small PODs, and cancellation
// is a per-slot generation bump instead of a per-event shared_ptr<bool>.
// Handles stay safe after the event fires, after cancel, and even after
// the Scheduler itself is destroyed: they hold a weak reference to the
// slot pool plus the generation they armed, so a stale cancel simply
// misses.

#ifndef RONPATH_EVENT_SCHEDULER_H_
#define RONPATH_EVENT_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "event/inline_callback.h"
#include "util/time.h"

namespace ronpath {

class Scheduler;

namespace internal {

struct EventSlot {
  std::uint64_t gen = 0;  // bumped on fire and on cancel
  InlineCallback cb;
};

struct SlotPool {
  std::vector<EventSlot> slots;
  std::vector<std::uint32_t> free_list;
};

}  // namespace internal

// Cancellable reference to a scheduled event. Default-constructed handles
// are inert; cancel() on an already-fired event is a harmless no-op, and
// a handle may safely outlive the Scheduler it came from.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel();
  [[nodiscard]] bool pending() const;

 private:
  friend class Scheduler;
  EventHandle(std::weak_ptr<internal::SlotPool> pool, std::uint32_t slot, std::uint64_t gen)
      : pool_(std::move(pool)), slot_(slot), gen_(gen) {}

  std::weak_ptr<internal::SlotPool> pool_;
  std::uint32_t slot_ = 0;
  std::uint64_t gen_ = 0;
};

class Scheduler {
 public:
  using Callback = InlineCallback;

  Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }

  // Schedules `cb` at absolute time `at` (must not be before now()).
  EventHandle schedule_at(TimePoint at, Callback cb);
  // Schedules `cb` after `delay` (clamped to zero if negative).
  EventHandle schedule_after(Duration delay, Callback cb);

  // Runs events until the queue is empty or the clock passes `until`.
  void run_until(TimePoint until);
  // Runs every pending event (only safe if the event graph quiesces).
  void run_all();
  // Pops at most one queue entry (fired or cancelled tombstone); returns
  // false if the queue was empty.
  bool step();

  // Queue entries still pending, including cancelled-but-unpopped ones
  // (cancellation is lazy).
  [[nodiscard]] std::size_t pending_events() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t dispatched_events() const { return dispatched_; }

 private:
  struct Entry {
    TimePoint at;
    std::uint64_t seq;
    std::uint64_t gen;
    std::uint32_t slot;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  TimePoint now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::vector<Entry> heap_;  // std::push_heap/pop_heap min-heap via Later
  std::shared_ptr<internal::SlotPool> pool_;
};

// Repeating task: reschedules itself with a fixed or caller-computed period
// until stop() is called or the owning Scheduler stops being run.
class PeriodicTask {
 public:
  using Tick = std::function<void()>;
  // Fixed period; first fire after `initial_delay`.
  PeriodicTask(Scheduler& sched, Duration period, Duration initial_delay, Tick tick);
  ~PeriodicTask();
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop();
  [[nodiscard]] bool running() const { return running_; }

 private:
  void arm(Duration delay);

  Scheduler& sched_;
  Duration period_;
  Tick tick_;
  EventHandle handle_;
  bool running_ = true;
};

}  // namespace ronpath

#endif  // RONPATH_EVENT_SCHEDULER_H_
